package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dynfd/internal/dataset"
	"dynfd/internal/fd"
	"dynfd/internal/stream"
)

func TestSnapshotRoundTrip(t *testing.T) {
	t.Parallel()
	e := mustBootstrap(t, DefaultConfig())
	if _, err := e.ApplyBatch(stream.Batch{Changes: []stream.Change{
		{Kind: stream.Delete, ID: 2},
		{Kind: stream.Insert, Values: []string{"Marie", "Scott", "14467", "Potsdam"}},
	}}); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	e2, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !fd.Equal(e.FDs(), e2.FDs()) || !fd.Equal(e.NonFDs(), e2.NonFDs()) {
		t.Fatal("covers differ after restore")
	}
	if e.NumRecords() != e2.NumRecords() {
		t.Fatal("record counts differ")
	}
	if err := e2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Identical evolution afterwards, including identical new ids.
	batch := stream.Batch{Changes: []stream.Change{
		{Kind: stream.Insert, Values: []string{"Zoe", "King", "1", "X"}},
	}}
	r1, err := e.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("post-restore batches diverge: %+v vs %+v", r1, r2)
	}
}

func TestSnapshotPreservesNextIDAcrossDeletes(t *testing.T) {
	t.Parallel()
	// If the newest records were deleted, the restored engine must not
	// reuse their ids.
	e := mustBootstrap(t, DefaultConfig())
	res, err := e.ApplyBatch(stream.Batch{Changes: []stream.Change{
		{Kind: stream.Insert, Values: []string{"A", "B", "C", "D"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	newest := res.InsertedIDs[0]
	if _, err := e.ApplyBatch(stream.Batch{Changes: []stream.Change{
		{Kind: stream.Delete, ID: newest},
	}}); err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.ApplyBatch(stream.Batch{Changes: []stream.Change{
		{Kind: stream.Insert, Values: []string{"E", "F", "G", "H"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.InsertedIDs[0] <= newest {
		t.Errorf("restored engine reused id %d (newest deleted was %d)", res2.InsertedIDs[0], newest)
	}
}

func TestRestoreRejectsInvalidSnapshots(t *testing.T) {
	t.Parallel()
	if _, err := Restore(&Snapshot{NumAttrs: 0}); err == nil {
		t.Error("zero attrs accepted")
	}
	if _, err := Restore(&Snapshot{NumAttrs: 2, Records: []RecordSnapshot{
		{ID: 5, Values: []string{"a", "b"}},
		{ID: 3, Values: []string{"c", "d"}},
	}}); err == nil {
		t.Error("non-ascending ids accepted")
	}
	if _, err := Restore(&Snapshot{NumAttrs: 2, FDs: []FDSnapshot{{Lhs: []int{9}, Rhs: 0}}}); err == nil {
		t.Error("out-of-range FD attribute accepted")
	}
	if _, err := Restore(&Snapshot{NumAttrs: 2, NonFDs: []NonFDSnapshot{{Lhs: []int{-1}, Rhs: 0}}}); err == nil {
		t.Error("negative attribute accepted")
	}
	// Non-dual covers.
	if _, err := Restore(&Snapshot{
		NumAttrs: 2,
		FDs:      []FDSnapshot{{Lhs: nil, Rhs: 1}},
		NonFDs:   []NonFDSnapshot{{Lhs: []int{0}, Rhs: 1}},
	}); err == nil {
		t.Error("non-dual covers accepted")
	}
}

// TestSnapshotMidWorkload snapshots at random points of a random workload
// and verifies the restored engine stays exact.
func TestSnapshotMidWorkload(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(77))
	const attrs = 4
	cols := make([]string, attrs)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	rel := dataset.New("t", cols)
	for i := 0; i < 12; i++ {
		row := make([]string, attrs)
		for a := range row {
			row[a] = fmt.Sprint(r.Intn(3))
		}
		_ = rel.Append(row)
	}
	e, err := Bootstrap(rel, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var live []int64
	for i := 0; i < 12; i++ {
		live = append(live, int64(i))
	}
	for step := 0; step < 6; step++ {
		row := make([]string, attrs)
		for a := range row {
			row[a] = fmt.Sprint(r.Intn(3))
		}
		res, err := e.ApplyBatch(stream.Batch{Changes: []stream.Change{
			{Kind: stream.Insert, Values: row},
			{Kind: stream.Delete, ID: live[r.Intn(len(live))]},
		}})
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the live-id list from the engine.
		live = live[:0]
		for id := int64(0); id < e.store.NextID(); id++ {
			if _, ok := e.Record(id); ok {
				live = append(live, id)
			}
		}
		_ = res
		e2, err := Restore(e.Snapshot())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !fd.Equal(e.FDs(), e2.FDs()) {
			t.Fatalf("step %d: covers diverge", step)
		}
		if err := e2.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
