// Package fd defines the functional dependency value type shared by the
// discovery algorithms, the covers, and the public API, together with
// small utilities for sorting, comparing and minimizing FD sets.
package fd

import (
	"fmt"
	"sort"

	"dynfd/internal/attrset"
)

// FD is a functional dependency candidate Lhs → Rhs. An FD is non-trivial
// iff !Lhs.Contains(Rhs); all FDs handled by this repository are non-trivial.
type FD struct {
	Lhs attrset.Set
	Rhs int
}

// String renders the FD with numeric attribute indexes, e.g. "{0, 2} -> 4".
func (f FD) String() string {
	return fmt.Sprintf("%s -> %d", f.Lhs, f.Rhs)
}

// Names renders the FD with column names, e.g. "[zip] -> city".
func (f FD) Names(cols []string) string {
	rhs := fmt.Sprintf("col%d", f.Rhs)
	if f.Rhs < len(cols) {
		rhs = cols[f.Rhs]
	}
	return fmt.Sprintf("%s -> %s", f.Lhs.Names(cols), rhs)
}

// Less defines a total order over FDs: by Rhs, then by Lhs size, then by
// the lexicographic order of the Lhs bit pattern.
func Less(a, b FD) bool {
	if a.Rhs != b.Rhs {
		return a.Rhs < b.Rhs
	}
	ca, cb := a.Lhs.Count(), b.Lhs.Count()
	if ca != cb {
		return ca < cb
	}
	for w := len(a.Lhs) - 1; w >= 0; w-- {
		if a.Lhs[w] != b.Lhs[w] {
			return a.Lhs[w] < b.Lhs[w]
		}
	}
	return false
}

// Sort orders fds in place by Less.
func Sort(fds []FD) {
	sort.Slice(fds, func(i, j int) bool { return Less(fds[i], fds[j]) })
}

// Equal reports whether a and b contain the same FDs, ignoring order.
// Both slices are sorted in place.
func Equal(a, b []FD) bool {
	if len(a) != len(b) {
		return false
	}
	Sort(a)
	Sort(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Minimize returns the minimal FDs of the given set: every FD for which no
// other FD with the same Rhs has a proper subset Lhs. Duplicates are removed.
func Minimize(fds []FD) []FD {
	byRhs := make(map[int][]attrset.Set)
	for _, f := range fds {
		byRhs[f.Rhs] = append(byRhs[f.Rhs], f.Lhs)
	}
	var out []FD
	for rhs, lhss := range byRhs {
		// Sort by size so potential generalizations come first.
		sort.Slice(lhss, func(i, j int) bool { return lhss[i].Count() < lhss[j].Count() })
		var kept []attrset.Set
	next:
		for _, l := range lhss {
			for _, k := range kept {
				if k.IsSubsetOf(l) {
					continue next // covered (or duplicate)
				}
			}
			kept = append(kept, l)
			out = append(out, FD{Lhs: l, Rhs: rhs})
		}
	}
	Sort(out)
	return out
}

// Follows reports whether the candidate FD is implied by the given set of
// valid FDs, i.e. whether some FD with the same Rhs has Lhs ⊆ cand.Lhs.
// A trivial candidate (Rhs ∈ Lhs) always follows.
func Follows(valid []FD, cand FD) bool {
	if cand.Lhs.Contains(cand.Rhs) {
		return true
	}
	for _, f := range valid {
		if f.Rhs == cand.Rhs && f.Lhs.IsSubsetOf(cand.Lhs) {
			return true
		}
	}
	return false
}

// Diff computes the FDs added and removed when moving from the set old to
// the set new. Both inputs are sorted in place.
func Diff(oldFDs, newFDs []FD) (added, removed []FD) {
	Sort(oldFDs)
	Sort(newFDs)
	i, j := 0, 0
	for i < len(oldFDs) && j < len(newFDs) {
		switch {
		case oldFDs[i] == newFDs[j]:
			i++
			j++
		case Less(oldFDs[i], newFDs[j]):
			removed = append(removed, oldFDs[i])
			i++
		default:
			added = append(added, newFDs[j])
			j++
		}
	}
	removed = append(removed, oldFDs[i:]...)
	added = append(added, newFDs[j:]...)
	return added, removed
}
