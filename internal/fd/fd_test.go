package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynfd/internal/attrset"
)

func TestString(t *testing.T) {
	t.Parallel()
	f := FD{Lhs: attrset.Of(0, 2), Rhs: 4}
	if got := f.String(); got != "{0, 2} -> 4" {
		t.Errorf("String = %q", got)
	}
	cols := []string{"a", "b", "c", "d", "e"}
	if got := f.Names(cols); got != "[a, c] -> e" {
		t.Errorf("Names = %q", got)
	}
	if got := (FD{Lhs: attrset.Of(0), Rhs: 9}).Names(cols); got != "[a] -> col9" {
		t.Errorf("Names out of range = %q", got)
	}
}

func TestSortDeterministic(t *testing.T) {
	t.Parallel()
	fds := []FD{
		{Lhs: attrset.Of(1, 2), Rhs: 0},
		{Lhs: attrset.Of(3), Rhs: 0},
		{Lhs: attrset.Of(1), Rhs: 0},
		{Lhs: attrset.Of(0), Rhs: 2},
	}
	Sort(fds)
	want := []FD{
		{Lhs: attrset.Of(1), Rhs: 0},
		{Lhs: attrset.Of(3), Rhs: 0},
		{Lhs: attrset.Of(1, 2), Rhs: 0},
		{Lhs: attrset.Of(0), Rhs: 2},
	}
	for i := range want {
		if fds[i] != want[i] {
			t.Fatalf("Sort[%d] = %v, want %v", i, fds[i], want[i])
		}
	}
}

func TestEqual(t *testing.T) {
	t.Parallel()
	a := []FD{{Lhs: attrset.Of(1), Rhs: 0}, {Lhs: attrset.Of(2), Rhs: 3}}
	b := []FD{{Lhs: attrset.Of(2), Rhs: 3}, {Lhs: attrset.Of(1), Rhs: 0}}
	if !Equal(a, b) {
		t.Error("Equal = false for permuted slices")
	}
	c := []FD{{Lhs: attrset.Of(1), Rhs: 0}}
	if Equal(a, c) {
		t.Error("Equal = true for different lengths")
	}
	d := []FD{{Lhs: attrset.Of(1), Rhs: 0}, {Lhs: attrset.Of(2), Rhs: 4}}
	if Equal(a, d) {
		t.Error("Equal = true for different FDs")
	}
}

func TestMinimize(t *testing.T) {
	t.Parallel()
	fds := []FD{
		{Lhs: attrset.Of(1), Rhs: 0},
		{Lhs: attrset.Of(1, 2), Rhs: 0}, // specialization of {1}->0
		{Lhs: attrset.Of(2, 3), Rhs: 0},
		{Lhs: attrset.Of(1), Rhs: 0}, // duplicate
		{Lhs: attrset.Of(4), Rhs: 5},
	}
	got := Minimize(fds)
	want := []FD{
		{Lhs: attrset.Of(1), Rhs: 0},
		{Lhs: attrset.Of(2, 3), Rhs: 0},
		{Lhs: attrset.Of(4), Rhs: 5},
	}
	if !Equal(got, want) {
		t.Errorf("Minimize = %v, want %v", got, want)
	}
}

func TestFollows(t *testing.T) {
	t.Parallel()
	valid := []FD{{Lhs: attrset.Of(1), Rhs: 0}}
	if !Follows(valid, FD{Lhs: attrset.Of(1, 2), Rhs: 0}) {
		t.Error("specialization does not follow")
	}
	if Follows(valid, FD{Lhs: attrset.Of(2), Rhs: 0}) {
		t.Error("unrelated FD follows")
	}
	if !Follows(nil, FD{Lhs: attrset.Of(0), Rhs: 0}) {
		t.Error("trivial FD does not follow")
	}
}

func TestDiff(t *testing.T) {
	t.Parallel()
	oldFDs := []FD{{Lhs: attrset.Of(1), Rhs: 0}, {Lhs: attrset.Of(2), Rhs: 3}}
	newFDs := []FD{{Lhs: attrset.Of(1), Rhs: 0}, {Lhs: attrset.Of(4), Rhs: 3}}
	added, removed := Diff(oldFDs, newFDs)
	if len(added) != 1 || added[0] != (FD{Lhs: attrset.Of(4), Rhs: 3}) {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != (FD{Lhs: attrset.Of(2), Rhs: 3}) {
		t.Errorf("removed = %v", removed)
	}
}

func randomFDs(r *rand.Rand, n int) []FD {
	fds := make([]FD, 0, n)
	for i := 0; i < n; i++ {
		var lhs attrset.Set
		for j := 0; j < r.Intn(4); j++ {
			lhs = lhs.With(r.Intn(6))
		}
		rhs := r.Intn(6)
		if lhs.Contains(rhs) {
			lhs = lhs.Without(rhs)
		}
		fds = append(fds, FD{Lhs: lhs, Rhs: rhs})
	}
	return fds
}

func TestQuickMinimizeIdempotentAndSound(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		fds := randomFDs(r, r.Intn(15))
		m := Minimize(fds)
		// Idempotent.
		if !Equal(Minimize(append([]FD(nil), m...)), append([]FD(nil), m...)) {
			return false
		}
		// Every original FD follows from the minimized set, and no minimized
		// FD is implied by another minimized FD.
		for _, x := range fds {
			if !Follows(m, x) {
				return false
			}
		}
		for i, x := range m {
			rest := append(append([]FD(nil), m[:i]...), m[i+1:]...)
			if Follows(rest, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDiffRoundTrip(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(13))
	f := func() bool {
		a := Minimize(randomFDs(r, r.Intn(12)))
		b := Minimize(randomFDs(r, r.Intn(12)))
		added, removed := Diff(a, b)
		// applying diff to a yields b
		got := map[FD]bool{}
		for _, x := range a {
			got[x] = true
		}
		for _, x := range removed {
			if !got[x] {
				return false
			}
			delete(got, x)
		}
		for _, x := range added {
			if got[x] {
				return false
			}
			got[x] = true
		}
		if len(got) != len(b) {
			return false
		}
		for _, x := range b {
			if !got[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
