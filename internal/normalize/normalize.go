// Package normalize implements the classic FD reasoning toolkit behind
// schema normalization and query optimization — the first two applications
// the DynFD paper lists for functional dependencies (§1): attribute
// closures and implication (Armstrong's axioms), candidate key
// enumeration, canonical covers, BCNF checking and lossless BCNF
// decomposition, 3NF synthesis, and functional reduction of column lists
// (the GROUP-BY pruning of Paulley's query-optimization work, paper
// reference [14]).
package normalize

import (
	"sort"

	"dynfd/internal/attrset"
	"dynfd/internal/fd"
)

// Closure returns the attribute closure of x under the given FDs: the
// largest set X+ with x → X+ implied by Armstrong's axioms.
func Closure(fds []fd.FD, x attrset.Set) attrset.Set {
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if f.Lhs.IsSubsetOf(x) && !x.Contains(f.Rhs) {
				x = x.With(f.Rhs)
				changed = true
			}
		}
	}
	return x
}

// Implies reports whether the candidate FD follows from the given FDs.
func Implies(fds []fd.FD, cand fd.FD) bool {
	return Closure(fds, cand.Lhs).Contains(cand.Rhs)
}

// CandidateKeys enumerates all minimal keys of a schema with numAttrs
// attributes under the given FDs. Every key must contain the attributes
// that appear on no right-hand side; the remaining search space is
// explored breadth-first with subset pruning.
func CandidateKeys(fds []fd.FD, numAttrs int) []attrset.Set {
	full := attrset.Full(numAttrs)
	// base: attributes that no FD can derive — they are in every key.
	derivable := attrset.Set{}
	for _, f := range fds {
		derivable = derivable.With(f.Rhs)
	}
	base := full.Diff(derivable)
	if Closure(fds, base) == full {
		return []attrset.Set{base}
	}
	// BFS over extensions of base by candidate attributes, smallest first.
	candidates := full.Diff(base).Slice()
	var keys []attrset.Set
	frontier := []attrset.Set{base}
	for len(frontier) > 0 {
		var next []attrset.Set
		seen := make(map[attrset.Set]bool)
		for _, cur := range frontier {
			for _, a := range candidates {
				if cur.Contains(a) {
					continue
				}
				ext := cur.With(a)
				if seen[ext] {
					continue
				}
				seen[ext] = true
				// Prune extensions of already-found keys.
				covered := false
				for _, k := range keys {
					if k.IsSubsetOf(ext) {
						covered = true
						break
					}
				}
				if covered {
					continue
				}
				if Closure(fds, ext) == full {
					keys = append(keys, ext)
				} else {
					next = append(next, ext)
				}
			}
		}
		frontier = next
	}
	sortSets(keys)
	return keys
}

// IsKey reports whether x is a superkey.
func IsKey(fds []fd.FD, numAttrs int, x attrset.Set) bool {
	return Closure(fds, x) == attrset.Full(numAttrs)
}

// CanonicalCover reduces the FD set to a canonical cover: single-attribute
// right-hand sides (given), no extraneous left-hand-side attributes, and
// no redundant FDs. The result implies exactly the same FDs.
func CanonicalCover(fds []fd.FD) []fd.FD {
	cover := append([]fd.FD(nil), fds...)
	// Remove extraneous lhs attributes: a ∈ X is extraneous in X → b if
	// (X \ {a})+ under the current cover still contains b.
	for i := range cover {
		f := cover[i]
		for a := f.Lhs.First(); a >= 0; a = f.Lhs.Next(a) {
			reduced := f.Lhs.Without(a)
			if Closure(cover, reduced).Contains(f.Rhs) {
				f.Lhs = reduced
				cover[i] = f
			}
		}
	}
	// Remove redundant FDs: f is redundant if the rest implies it.
	out := cover[:0]
	for i := range cover {
		rest := append(append([]fd.FD(nil), out...), cover[i+1:]...)
		if !Implies(rest, cover[i]) {
			out = append(out, cover[i])
		}
	}
	res := fd.Minimize(out)
	return res
}

// BCNFViolations returns the FDs that violate Boyce-Codd normal form: the
// non-trivial dependencies whose left-hand side is not a superkey.
func BCNFViolations(fds []fd.FD, numAttrs int) []fd.FD {
	var out []fd.FD
	for _, f := range fds {
		if f.Lhs.Contains(f.Rhs) {
			continue
		}
		if !IsKey(fds, numAttrs, f.Lhs) {
			out = append(out, f)
		}
	}
	fd.Sort(out)
	return out
}

// Relation is one decomposed relation schema: a set of attribute indexes.
type Relation struct {
	Attrs attrset.Set
}

// DecomposeBCNF losslessly decomposes the schema into BCNF relations by
// repeatedly splitting on a violating FD X → A into (X ∪ {A}) and
// (R \ {A}). FDs are projected onto fragments via closures, so the result
// is guaranteed to be in BCNF (dependency preservation is not guaranteed —
// it cannot be, in general).
func DecomposeBCNF(fds []fd.FD, numAttrs int) []Relation {
	full := attrset.Full(numAttrs)
	var result []Relation
	work := []attrset.Set{full}
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		proj := Project(fds, r)
		viol := violating(proj, r)
		if viol == nil {
			result = append(result, Relation{Attrs: r})
			continue
		}
		left := viol.Lhs.With(viol.Rhs)
		right := r.Diff(left).Union(viol.Lhs)
		work = append(work, left, right)
	}
	sort.Slice(result, func(i, j int) bool {
		return fd.Less(fd.FD{Lhs: result[i].Attrs}, fd.FD{Lhs: result[j].Attrs})
	})
	return result
}

// violating returns a BCNF-violating FD within relation r, or nil.
func violating(proj []fd.FD, r attrset.Set) *fd.FD {
	for _, f := range proj {
		if f.Lhs.Contains(f.Rhs) {
			continue
		}
		if !Closure(proj, f.Lhs).IsSupersetOf(r) {
			v := f
			return &v
		}
	}
	return nil
}

// Project computes the projection of the FDs onto the attribute set r:
// all FDs X → a with X ⊆ r, a ∈ r implied by the originals, reduced to
// minimal left-hand sides. Exponential in |r| in the worst case, as any
// exact projection must be.
func Project(fds []fd.FD, r attrset.Set) []fd.FD {
	attrs := r.Slice()
	var out []fd.FD
	// Enumerate subsets of r by increasing size; record minimal FDs only.
	n := len(attrs)
	subsets := make([][]attrset.Set, n+1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var s attrset.Set
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s = s.With(attrs[i])
			}
		}
		c := s.Count()
		subsets[c] = append(subsets[c], s)
	}
	for size := 0; size <= n; size++ {
		for _, lhs := range subsets[size] {
			cl := Closure(fds, lhs).Intersect(r)
			for a := cl.First(); a >= 0; a = cl.Next(a) {
				if lhs.Contains(a) {
					continue
				}
				cand := fd.FD{Lhs: lhs, Rhs: a}
				if !fd.Follows(out, cand) {
					out = append(out, cand)
				}
			}
		}
	}
	fd.Sort(out)
	return out
}

// Synthesize3NF produces a lossless, dependency-preserving decomposition
// into third normal form via the classic synthesis algorithm: one relation
// per canonical-cover FD group, plus a key relation when no fragment
// contains a key.
func Synthesize3NF(fds []fd.FD, numAttrs int) []Relation {
	cover := CanonicalCover(fds)
	// Group FDs by Lhs.
	groups := map[attrset.Set]attrset.Set{}
	for _, f := range cover {
		groups[f.Lhs] = groups[f.Lhs].With(f.Rhs)
	}
	var rels []Relation
	for lhs, rhss := range groups {
		rels = append(rels, Relation{Attrs: lhs.Union(rhss)})
	}
	// Drop fragments contained in others.
	sort.Slice(rels, func(i, j int) bool { return rels[i].Attrs.Count() > rels[j].Attrs.Count() })
	var kept []Relation
	for _, r := range rels {
		contained := false
		for _, k := range kept {
			if r.Attrs.IsSubsetOf(k.Attrs) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, r)
		}
	}
	// Ensure some fragment contains a candidate key.
	hasKey := false
	for _, r := range kept {
		if IsKey(fds, numAttrs, r.Attrs) {
			hasKey = true
			break
		}
	}
	if !hasKey {
		keys := CandidateKeys(fds, numAttrs)
		if len(keys) > 0 {
			kept = append(kept, Relation{Attrs: keys[0]})
		} else {
			kept = append(kept, Relation{Attrs: attrset.Full(numAttrs)})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		return fd.Less(fd.FD{Lhs: kept[i].Attrs}, fd.FD{Lhs: kept[j].Attrs})
	})
	return kept
}

// ReduceColumns removes from cols every attribute that is functionally
// determined by the remaining ones — the FD-based GROUP BY / ORDER BY
// pruning of query optimization (paper reference [14]). The scan removes
// attributes greedily from the highest index down, so the result is a
// minimal (not necessarily minimum) reduction.
func ReduceColumns(fds []fd.FD, cols attrset.Set) attrset.Set {
	attrs := cols.Slice()
	for i := len(attrs) - 1; i >= 0; i-- {
		a := attrs[i]
		if !cols.Contains(a) {
			continue
		}
		rest := cols.Without(a)
		if Closure(fds, rest).Contains(a) {
			cols = rest
		}
	}
	return cols
}

func sortSets(s []attrset.Set) {
	sort.Slice(s, func(i, j int) bool {
		return fd.Less(fd.FD{Lhs: s[i]}, fd.FD{Lhs: s[j]})
	})
}
