package normalize

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dynfd/internal/attrset"
	"dynfd/internal/fd"
	"dynfd/internal/oracle"
)

// The classic orders schema: order_id(0), customer(1), cust_city(2),
// product(3), unit_price(4).
var orderFDs = []fd.FD{
	{Lhs: attrset.Of(0), Rhs: 1},
	{Lhs: attrset.Of(0), Rhs: 3},
	{Lhs: attrset.Of(1), Rhs: 2},
	{Lhs: attrset.Of(3), Rhs: 4},
}

func TestClosure(t *testing.T) {
	t.Parallel()
	got := Closure(orderFDs, attrset.Of(0))
	if got != attrset.Of(0, 1, 2, 3, 4) {
		t.Errorf("Closure({0}) = %v", got)
	}
	if got := Closure(orderFDs, attrset.Of(1)); got != attrset.Of(1, 2) {
		t.Errorf("Closure({1}) = %v", got)
	}
	if got := Closure(nil, attrset.Of(2)); got != attrset.Of(2) {
		t.Errorf("Closure with no FDs = %v", got)
	}
}

func TestImplies(t *testing.T) {
	t.Parallel()
	if !Implies(orderFDs, fd.FD{Lhs: attrset.Of(0), Rhs: 4}) {
		t.Error("transitive FD not implied")
	}
	if Implies(orderFDs, fd.FD{Lhs: attrset.Of(1), Rhs: 4}) {
		t.Error("unrelated FD implied")
	}
}

func TestCandidateKeys(t *testing.T) {
	t.Parallel()
	keys := CandidateKeys(orderFDs, 5)
	if len(keys) != 1 || keys[0] != attrset.Of(0) {
		t.Errorf("keys = %v", keys)
	}
	// Two keys: a→b, b→a over {a,b,c}: keys {a,c} and {b,c}.
	fds := []fd.FD{
		{Lhs: attrset.Of(0), Rhs: 1},
		{Lhs: attrset.Of(1), Rhs: 0},
	}
	keys = CandidateKeys(fds, 3)
	want := []attrset.Set{attrset.Of(0, 2), attrset.Of(1, 2)}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("keys = %v, want %v", keys, want)
	}
	// No FDs: the full set is the only key.
	keys = CandidateKeys(nil, 3)
	if len(keys) != 1 || keys[0] != attrset.Full(3) {
		t.Errorf("keys without FDs = %v", keys)
	}
}

func TestCanonicalCover(t *testing.T) {
	t.Parallel()
	// {0,1} -> 2 where {0} -> 2 already holds: 1 is extraneous; and a
	// redundant transitive FD.
	fds := []fd.FD{
		{Lhs: attrset.Of(0), Rhs: 1},
		{Lhs: attrset.Of(1), Rhs: 2},
		{Lhs: attrset.Of(0), Rhs: 2},    // redundant (transitivity)
		{Lhs: attrset.Of(0, 3), Rhs: 1}, // 3 extraneous, then redundant
	}
	got := CanonicalCover(fds)
	want := []fd.FD{
		{Lhs: attrset.Of(0), Rhs: 1},
		{Lhs: attrset.Of(1), Rhs: 2},
	}
	if !fd.Equal(got, want) {
		t.Errorf("CanonicalCover = %v, want %v", got, want)
	}
}

func TestQuickCanonicalCoverEquivalent(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		const attrs = 5
		var fds []fd.FD
		for i := 0; i < r.Intn(10); i++ {
			var lhs attrset.Set
			for j := 0; j < 1+r.Intn(3); j++ {
				lhs = lhs.With(r.Intn(attrs))
			}
			rhs := r.Intn(attrs)
			fds = append(fds, fd.FD{Lhs: lhs.Without(rhs), Rhs: rhs})
		}
		cover := CanonicalCover(fds)
		// Equivalence: same closures for every single attribute and a few
		// random sets.
		for a := 0; a < attrs; a++ {
			if Closure(fds, attrset.Of(a)) != Closure(cover, attrset.Of(a)) {
				return false
			}
		}
		for trial := 0; trial < 8; trial++ {
			var x attrset.Set
			for j := 0; j < r.Intn(4); j++ {
				x = x.With(r.Intn(attrs))
			}
			if Closure(fds, x) != Closure(cover, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBCNFViolationsAndDecompose(t *testing.T) {
	t.Parallel()
	viol := BCNFViolations(orderFDs, 5)
	// Every FD except those with a key lhs violates; {0} is the key.
	want := []fd.FD{
		{Lhs: attrset.Of(1), Rhs: 2},
		{Lhs: attrset.Of(3), Rhs: 4},
	}
	if !fd.Equal(viol, want) {
		t.Errorf("violations = %v, want %v", viol, want)
	}

	rels := DecomposeBCNF(orderFDs, 5)
	// Every fragment must be in BCNF under its projected FDs.
	for _, rel := range rels {
		proj := Project(orderFDs, rel.Attrs)
		if v := violating(proj, rel.Attrs); v != nil {
			t.Errorf("fragment %v violates BCNF via %v", rel.Attrs, v)
		}
	}
	// Attribute preservation: the union covers the schema.
	var union attrset.Set
	for _, rel := range rels {
		union = union.Union(rel.Attrs)
	}
	if union != attrset.Full(5) {
		t.Errorf("attributes lost: %v", union)
	}
}

func TestProject(t *testing.T) {
	t.Parallel()
	// Project {0->1, 1->2} onto {0,2}: transitively 0->2.
	fds := []fd.FD{
		{Lhs: attrset.Of(0), Rhs: 1},
		{Lhs: attrset.Of(1), Rhs: 2},
	}
	got := Project(fds, attrset.Of(0, 2))
	want := []fd.FD{{Lhs: attrset.Of(0), Rhs: 2}}
	if !fd.Equal(got, want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
}

func TestSynthesize3NF(t *testing.T) {
	t.Parallel()
	rels := Synthesize3NF(orderFDs, 5)
	// Dependency preservation: every original FD must be implied by the
	// union of projections onto fragments.
	var all []fd.FD
	for _, rel := range rels {
		all = append(all, Project(orderFDs, rel.Attrs)...)
	}
	for _, f := range orderFDs {
		if !Implies(all, f) {
			t.Errorf("FD %v lost by synthesis", f)
		}
	}
	// Some fragment contains a candidate key.
	hasKey := false
	for _, rel := range rels {
		if IsKey(orderFDs, 5, rel.Attrs) {
			hasKey = true
		}
	}
	if !hasKey {
		t.Errorf("no fragment contains a key: %v", rels)
	}
}

func TestSynthesize3NFNoFDs(t *testing.T) {
	t.Parallel()
	rels := Synthesize3NF(nil, 3)
	if len(rels) != 1 || rels[0].Attrs != attrset.Full(3) {
		t.Errorf("rels = %v", rels)
	}
}

func TestReduceColumns(t *testing.T) {
	t.Parallel()
	// GROUP BY order_id, customer, cust_city reduces to GROUP BY order_id.
	got := ReduceColumns(orderFDs, attrset.Of(0, 1, 2))
	if got != attrset.Of(0) {
		t.Errorf("ReduceColumns = %v", got)
	}
	// Nothing derivable: unchanged.
	if got := ReduceColumns(orderFDs, attrset.Of(1, 3)); got != attrset.Of(1, 3) {
		t.Errorf("ReduceColumns = %v", got)
	}
}

// TestQuickKeysAgainstDiscoveredFDs ties the toolkit to discovery: for a
// random relation, the candidate keys derived from its minimal FDs must be
// exactly the minimal unique column combinations of the data... provided
// the relation has no duplicate rows (duplicates break the equivalence).
func TestQuickKeysAgainstDiscoveredFDs(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(5150))
	f := func() bool {
		attrs := 2 + r.Intn(3)
		seen := map[string]bool{}
		var rows [][]string
		for i := 0; i < 4+r.Intn(12); i++ {
			row := make([]string, attrs)
			for a := range row {
				row[a] = fmt.Sprint(r.Intn(3))
			}
			k := fmt.Sprint(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			rows = append(rows, row)
		}
		fds := oracle.MinimalFDs(rows, attrs)
		keys := CandidateKeys(fds, attrs)
		// Verify each key is unique in the data and minimal.
		unique := func(cols attrset.Set) bool {
			g := map[string]bool{}
			for _, row := range rows {
				k := ""
				cols.ForEach(func(a int) bool { k += row[a] + "\x00"; return true })
				if g[k] {
					return false
				}
				g[k] = true
			}
			return true
		}
		for _, k := range keys {
			if !unique(k) {
				t.Logf("key %v not unique in %v", k, rows)
				return false
			}
			for a := k.First(); a >= 0; a = k.Next(a) {
				if unique(k.Without(a)) {
					t.Logf("key %v not minimal", k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
