package durable

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"dynfd/internal/faultio"
	"dynfd/internal/repl"
	"dynfd/internal/stream"
	"dynfd/internal/wal"
)

// TestPromoteSurvivesCrashReplay promotes mid-stream, "kills" the process
// (no Close), and requires recovery to restore the epoch from the WAL
// promotion record — a promotion that returned nil is never forgotten.
func TestPromoteSurvivesCrashReplay(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Apply(insertBatch(fmt.Sprint(i), "x", "p")); err != nil {
			t.Fatal(err)
		}
	}
	epoch, err := eng.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || eng.Epoch() != 1 || eng.EpochStart() != 3 || eng.Seq() != 3 {
		t.Fatalf("after promote: epoch=%d/%d start=%d seq=%d, want 1/1 start 3 seq 3",
			epoch, eng.Epoch(), eng.EpochStart(), eng.Seq())
	}
	if _, err := eng.Apply(insertBatch("9", "y", "q")); err != nil {
		t.Fatal(err)
	}
	want := fdsOf(eng)
	// No Close: the promotion and trailing batch live only in the WAL.

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(st2, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Seq() != 4 || eng2.Epoch() != 1 || eng2.EpochStart() != 3 {
		t.Fatalf("recovered seq=%d epoch=%d start=%d, want 4/1/3", eng2.Seq(), eng2.Epoch(), eng2.EpochStart())
	}
	if got := fdsOf(eng2); got != want {
		t.Fatalf("FDs after recovery:\n got %s\nwant %s", got, want)
	}
	if err := eng2.Core().CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A second promotion on the recovered engine, folded into the final
	// checkpoint by Close, must survive through the manifest alone.
	if epoch, err := eng2.Promote(); err != nil || epoch != 2 {
		t.Fatalf("second promote: epoch=%d err=%v, want 2/nil", epoch, err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	eng3, err := Open(st3, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if eng3.Epoch() != 2 || eng3.EpochStart() != 5 {
		t.Fatalf("epoch after checkpointed reopen: %d start %d, want 2 start 5", eng3.Epoch(), eng3.EpochStart())
	}
}

// TestReplicatedPromotion ships a promotion record in-band through
// ApplyReplicated: the follower adopts the epoch at the same sequence,
// stale and malformed promotions are rejected without consuming a
// sequence, and the adopted epoch survives crash/replay.
func TestReplicatedPromotion(t *testing.T) {
	t.Parallel()
	mem := faultio.NewMem()
	eng, err := Open(mem, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stream.WriteChanges(&buf, insertBatch("1", "x", "p").Changes); err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyReplicated(1, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyReplicated(2, wal.EncodePromotion(3)); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 3 || eng.EpochStart() != 2 || eng.Seq() != 2 {
		t.Fatalf("epoch=%d start=%d seq=%d, want 3/2/2", eng.Epoch(), eng.EpochStart(), eng.Seq())
	}

	// A promotion that does not advance the epoch is divergence, not replay.
	if err := eng.ApplyReplicated(3, wal.EncodePromotion(3)); err == nil || !strings.Contains(err.Error(), "already at") {
		t.Fatalf("stale promotion: got %v, want 'already at' error", err)
	}
	// A malformed control payload must fail loudly, not apply as data.
	if err := eng.ApplyReplicated(3, wal.EncodePromotion(5)[:10]); !errors.Is(err, wal.ErrBadControl) {
		t.Fatalf("truncated promotion: got %v, want ErrBadControl", err)
	}
	if eng.Seq() != 2 || eng.Epoch() != 3 {
		t.Fatalf("rejected frames moved state: seq=%d epoch=%d", eng.Seq(), eng.Epoch())
	}

	// Crash (drop unsynced bytes) and recover: the replicated promotion was
	// acknowledged, so it must still be there.
	eng2, err := Open(mem.Reopen(0), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Epoch() != 3 || eng2.EpochStart() != 2 || eng2.Seq() != 2 {
		t.Fatalf("recovered epoch=%d start=%d seq=%d, want 3/2/2", eng2.Epoch(), eng2.EpochStart(), eng2.Seq())
	}
}

// TestEpochForcedInstallDiscardsDivergentTail is the fenced-ex-primary
// rejoin: a node with an unshipped tail (seq 5, epoch 0) installs the
// winner's checkpoint from a HIGHER epoch at a LOWER sequence (seq 4,
// epoch 1). The install must be accepted, the divergent tail discarded
// wholesale, and — the Rewind regression — a batch acknowledged after the
// backward install must be genuinely fsynced, not falsely reported
// durable by the stale pre-install sync mark.
func TestEpochForcedInstallDiscardsDivergentTail(t *testing.T) {
	t.Parallel()
	shared := []stream.Batch{insertBatch("1", "x", "p"), insertBatch("2", "x", "q")}

	winner, err := Open(faultio.NewMem(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range shared {
		if _, err := winner.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := winner.Promote(); err != nil {
		t.Fatal(err)
	}
	if _, err := winner.Apply(insertBatch("3", "y", "p")); err != nil {
		t.Fatal(err)
	}
	blob, cpSeq, err := winner.CheckpointBlob(winner.Seq())
	if err != nil || cpSeq != 4 {
		t.Fatalf("CheckpointBlob: seq=%d err=%v, want 4/nil", cpSeq, err)
	}

	loserMem := faultio.NewMem()
	loser, err := Open(loserMem, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range shared {
		if _, err := loser.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	// The split-brain tail the winner never saw: acknowledged locally, lost
	// on rejoin — split-brain safety beats durability here by design.
	for i := 0; i < 3; i++ {
		if _, err := loser.Apply(insertBatch(fmt.Sprint("lost", i), "z", "r")); err != nil {
			t.Fatal(err)
		}
	}
	if loser.Seq() != 5 || loser.Epoch() != 0 {
		t.Fatalf("loser at seq=%d epoch=%d, want 5/0", loser.Seq(), loser.Epoch())
	}

	if err := loser.InstallCheckpoint(blob); err != nil {
		t.Fatalf("epoch-forced install: %v", err)
	}
	if loser.Seq() != 4 || loser.Epoch() != 1 || loser.EpochStart() != 3 {
		t.Fatalf("after install: seq=%d epoch=%d start=%d, want 4/1/3", loser.Seq(), loser.Epoch(), loser.EpochStart())
	}
	if got, want := fdsOf(loser), fdsOf(winner); got != want {
		t.Fatalf("installed state diverges:\n got %s\nwant %s", got, want)
	}
	if loser.NumRecords() != winner.NumRecords() {
		t.Fatalf("records: loser %d, winner %d", loser.NumRecords(), winner.NumRecords())
	}
	if err := loser.Core().CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Re-installing the same blob is a no-op refusal: same epoch, not ahead.
	if err := loser.InstallCheckpoint(blob); err == nil || !strings.Contains(err.Error(), "not ahead") {
		t.Fatalf("re-install: got %v, want 'not ahead' error", err)
	}

	// Rewind regression: the pre-install committer had synced=5; the next
	// batch lands at seq 5 again. Apply returning nil must mean a real
	// fsync, so a crash that drops every unsynced byte keeps the batch.
	if _, err := loser.Apply(insertBatch("after", "y", "q")); err != nil {
		t.Fatal(err)
	}
	want := fdsOf(loser)
	rec, err := Open(loserMem.Reopen(0), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq() != 5 || rec.Epoch() != 1 {
		t.Fatalf("recovered seq=%d epoch=%d, want 5/1 — acked post-install batch lost", rec.Seq(), rec.Epoch())
	}
	if got := fdsOf(rec); got != want {
		t.Fatalf("FDs after post-install recovery:\n got %s\nwant %s", got, want)
	}
}

// TestEpochForcedInstallRewindsFeed: the loser of a failover may itself
// feed downstream followers (chained replication). The backward checkpoint
// install must rewind the feed along with the committer — the ring's
// retained frames belong to the discarded history, and a downstream
// follower that installs the same winner checkpoint and re-tails with the
// matching epoch must never be served them, or it would apply divergent
// old-epoch frames onto winner state.
func TestEpochForcedInstallRewindsFeed(t *testing.T) {
	t.Parallel()
	shared := []stream.Batch{insertBatch("1", "x", "p"), insertBatch("2", "x", "q")}

	winner, err := Open(faultio.NewMem(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range shared {
		if _, err := winner.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := winner.Promote(); err != nil {
		t.Fatal(err)
	}
	if _, err := winner.Apply(insertBatch("3", "y", "p")); err != nil {
		t.Fatal(err)
	}
	blob, cpSeq, err := winner.CheckpointBlob(winner.Seq())
	if err != nil || cpSeq != 4 {
		t.Fatalf("CheckpointBlob: seq=%d err=%v, want 4/nil", cpSeq, err)
	}

	feed := repl.NewFeed(0, 8)
	opts := testOpts()
	opts.Feed = feed
	loser, err := Open(faultio.NewMem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range shared {
		if _, err := loser.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := loser.Apply(insertBatch(fmt.Sprint("lost", i), "z", "r")); err != nil {
			t.Fatal(err)
		}
	}
	if got := feed.DurableSeq(); got != 5 {
		t.Fatalf("feed watermark before install = %d, want 5", got)
	}

	if err := loser.InstallCheckpoint(blob); err != nil {
		t.Fatalf("epoch-forced install: %v", err)
	}
	// The feed must be rewound to the installed sequence: watermark and
	// floor at 4, divergent frames 3..5 gone.
	if got := feed.DurableSeq(); got != 4 {
		t.Fatalf("feed watermark after install = %d, want 4", got)
	}
	if got := feed.Floor(); got != 4 {
		t.Fatalf("feed floor after install = %d, want 4", got)
	}
	// A downstream follower that installed the same winner checkpoint and
	// re-tails from it waits for new frames instead of receiving the
	// discarded divergent ones.
	frames, wait, err := feed.Next(4)
	if err != nil || frames != nil || wait == nil {
		t.Fatalf("Next(4) after install: frames=%v wait=%v err=%v", frames, wait, err)
	}
	// A mid-stream downstream still parked at the divergent high is bounced
	// to checkpoint catch-up.
	if _, _, err := feed.Next(5); !errors.Is(err, repl.ErrSnapshotNeeded) {
		t.Fatalf("Next(5) after install: err=%v, want ErrSnapshotNeeded", err)
	}

	// The next batch on the rejoined loser ships as the replacement frame 5.
	if _, err := loser.Apply(insertBatch("after", "y", "q")); err != nil {
		t.Fatal(err)
	}
	frames, _, err = feed.Next(4)
	if err != nil || len(frames) != 1 || frames[0].Seq != 5 {
		t.Fatalf("Next(4) after rejoin write: frames=%v err=%v, want the single replacement frame 5", frames, err)
	}
	var changes []stream.Change
	if changes, err = stream.ReadChanges(bytes.NewReader(frames[0].Payload)); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Values[0] != "after" {
		t.Fatalf("replacement frame carries %v, want the post-install batch", changes)
	}
}
