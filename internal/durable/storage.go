// Package durable layers crash-safe persistence on top of the core DynFD
// engine (DESIGN.md §11): every applied batch is appended to a checksummed
// write-ahead log and fsynced before it is acknowledged, and checkpoints
// periodically fold the log into an atomically-replaced engine snapshot.
// Recovery loads the latest valid checkpoint, replays the WAL suffix, and
// truncates any torn tail a crash left behind — acknowledged batches are
// never lost, unacknowledged ones are never half-applied.
package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"dynfd/internal/wal"
)

// Storage is the persistence surface the durable engine writes through: an
// atomically-replaceable checkpoint blob plus an appendable write-ahead
// log. DirStorage implements it on a directory; internal/faultio provides
// a crash-scripted in-memory implementation for the recovery tests.
type Storage interface {
	// ReadCheckpoint returns the current checkpoint blob, or ok=false when
	// none has ever been written.
	ReadCheckpoint() (data []byte, ok bool, err error)
	// WriteCheckpoint atomically replaces the checkpoint blob: after a
	// crash, either the previous or the new blob is read back — never a
	// mixture or a prefix.
	WriteCheckpoint(data []byte) error
	// ReadLog returns the WAL's raw contents (possibly ending in a torn
	// tail, which wal.Scan separates out).
	ReadLog() ([]byte, error)
	// Log returns the WAL file surface for appending, syncing, and
	// truncating.
	Log() wal.File
	// Close releases the storage's resources. It does not sync.
	Close() error
}

// Filenames inside a DirStorage directory.
const (
	checkpointName = "checkpoint.json"
	checkpointTmp  = "checkpoint.json.tmp"
	walName        = "wal.log"
)

// DirStorage implements Storage on a directory holding checkpoint.json and
// wal.log. Checkpoint replacement is write-temp + fsync + rename + fsync
// of the directory, the portable atomic-replace recipe; the WAL file is
// kept open in append mode for the storage's lifetime.
type DirStorage struct {
	dir string
	log *os.File
}

// OpenDir opens (creating if necessary) a storage directory.
func OpenDir(dir string) (*DirStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating %s: %w", dir, err)
	}
	// A crash may have left a half-written checkpoint temp file behind; it
	// was never renamed into place, so it is garbage.
	_ = os.Remove(filepath.Join(dir, checkpointTmp))
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening WAL: %w", err)
	}
	return &DirStorage{dir: dir, log: f}, nil
}

// Dir returns the storage directory.
func (s *DirStorage) Dir() string { return s.dir }

// ReadCheckpoint reads checkpoint.json if present.
func (s *DirStorage) ReadCheckpoint() ([]byte, bool, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, checkpointName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("durable: reading checkpoint: %w", err)
	}
	return data, true, nil
}

// WriteCheckpoint atomically replaces checkpoint.json.
func (s *DirStorage) WriteCheckpoint(data []byte) error {
	tmp := filepath.Join(s.dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: checkpoint temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, checkpointName)); err != nil {
		return fmt.Errorf("durable: checkpoint rename: %w", err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: dir sync: %w", err)
	}
	return nil
}

// ReadLog returns wal.log's current contents.
func (s *DirStorage) ReadLog() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, walName))
	if err != nil {
		return nil, fmt.Errorf("durable: reading WAL: %w", err)
	}
	return data, nil
}

// Log returns the open WAL file.
func (s *DirStorage) Log() wal.File { return s.log }

// Close closes the WAL file handle.
func (s *DirStorage) Close() error { return s.log.Close() }
