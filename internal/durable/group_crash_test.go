package durable

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dynfd/internal/core"
	"dynfd/internal/dataset"
	"dynfd/internal/faultio"
	"dynfd/internal/stream"
)

// groupBatch builds the w-th writer's b-th batch: insert-only with a
// unique first column per batch and low-cardinality tail columns, so any
// interleaving applies cleanly and still moves the covers around.
func groupBatch(w, b int) stream.Batch {
	return stream.Batch{Changes: []stream.Change{
		{Kind: stream.Insert, Values: []string{fmt.Sprintf("w%d-b%d-0", w, b), fmt.Sprint("x", b%2), fmt.Sprint("y", w%2)}},
		{Kind: stream.Insert, Values: []string{fmt.Sprintf("w%d-b%d-1", w, b), fmt.Sprint("x", (b+1)%2), fmt.Sprint("y", w%2)}},
	}}
}

// TestGroupCommitCrashRecovery is the fault-injection property test of the
// group-commit path: several goroutines stage batches concurrently —
// stage under a shared lock, wait outside it, commits coalescing into
// shared fsyncs — while a crash is injected at a scripted storage unit.
// After the kill, recovery from the surviving bytes must land on a batch
// prefix that contains every acknowledged batch (acked ⇒ durable) and
// whose engine state is bit-identical to replaying exactly that prefix in
// the original staging order (unacked batches recover cleanly or not at
// all — never half-applied).
func TestGroupCommitCrashRecovery(t *testing.T) {
	cfg := core.DefaultConfig()
	rows := [][]string{
		{"r0", "x0", "y0"},
		{"r1", "x1", "y1"},
		{"r2", "x0", "y1"},
	}
	opts := Options{
		Columns: testColumns, Config: cfg, CheckpointEvery: 5,
		SyncMaxDelay: 50 * time.Microsecond,
	}
	const writers, perWriter = 4, 4
	totalBatches := writers * perWriter

	// run drives the concurrent lifecycle against st: every successful
	// Stage records its (seq, batch) in staging order, the first failed
	// Stage keeps its batch (its WAL record may be torn but could also
	// have landed), and acked collects the sequences whose Wait returned
	// nil.
	run := func(st Storage) (staged map[uint64]stream.Batch, firstFail *stream.Batch, acked []uint64, bootAcked bool) {
		staged = map[uint64]stream.Batch{}
		eng, err := Open(st, opts)
		if err != nil {
			return staged, nil, nil, false
		}
		if err := eng.Bootstrap(rows); err != nil {
			return staged, nil, nil, false
		}
		var (
			mu      sync.Mutex // external Stage serialization, as the runtime does
			ackedMu sync.Mutex
			wg      sync.WaitGroup
		)
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := 0; b < perWriter; b++ {
					batch := groupBatch(w, b)
					mu.Lock()
					_, p, err := eng.Stage(batch)
					if err != nil {
						if firstFail == nil {
							bcopy := batch
							firstFail = &bcopy
						}
						mu.Unlock()
						return
					}
					mySeq := eng.Seq()
					staged[mySeq] = batch
					mu.Unlock()
					if p.Wait() == nil {
						ackedMu.Lock()
						acked = append(acked, mySeq)
						ackedMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		return staged, firstFail, acked, true
	}

	// Calibrate the storage-unit count with a fault-free concurrent run.
	free := faultio.NewMem()
	if staged, _, _, boot := run(free); !boot || len(staged) != totalBatches {
		t.Fatalf("fault-free run staged %d/%d batches (boot %v)", len(staged), totalBatches, boot)
	}
	total := free.Units()
	if total < 100 {
		t.Fatalf("suspiciously small unit count %d; workload broken?", total)
	}

	stride := total/120 + 1
	keeps := []int{0, 1, 9, 1 << 20}
	points := 0
	for budget := int64(0); budget <= total; budget += stride {
		m := faultio.NewMemCrashAt(budget)
		staged, firstFail, acked, bootAcked := run(m)
		points++

		re := m.Reopen(keeps[budget%int64(len(keeps))])
		rec, err := Open(re, opts)
		if err != nil {
			t.Fatalf("budget=%d: recovery failed: %v", budget, err)
		}
		seq := rec.Seq()

		// Acked ⇒ durable: every acknowledged sequence is inside the
		// recovered prefix.
		for _, a := range acked {
			if a > seq {
				t.Fatalf("budget=%d: batch %d was acked but recovery stops at %d — durability lost", budget, a, seq)
			}
		}

		// The recovered prefix must consist of staged batches in staging
		// order; the one sequence past the staged map can only be the
		// first failed Stage whose append made it to the log whole.
		replay := make([]stream.Batch, 0, seq)
		for s := uint64(1); s <= seq; s++ {
			b, ok := staged[s]
			if !ok {
				if s == uint64(len(staged))+1 && firstFail != nil {
					b = *firstFail
				} else {
					t.Fatalf("budget=%d: recovered seq %d was never staged (staged %d, firstFail %v)",
						budget, s, len(staged), firstFail != nil)
				}
			}
			replay = append(replay, b)
		}

		// Oracle: replay exactly that prefix without faults.
		rel := dataset.New("r", testColumns)
		for _, row := range rows {
			if err := rel.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		oracle, err := core.Bootstrap(rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range replay {
			if _, err := oracle.ApplyBatch(b); err != nil {
				t.Fatalf("budget=%d: oracle replay of batch %d: %v", budget, i+1, err)
			}
		}
		got, want := captureState(rec.Core()), captureState(oracle)
		if seq == 0 && got.records == 0 && !bootAcked {
			// The bootstrap never became durable; the empty engine is the
			// correct recovery.
			want = captureState(core.NewEmpty(len(testColumns), cfg))
		}
		if got != want {
			t.Fatalf("budget=%d: recovered state at seq %d diverges from oracle\n got %+v\nwant %+v",
				budget, seq, got, want)
		}
		if err := rec.Core().CheckInvariants(); err != nil {
			t.Fatalf("budget=%d: invariants after recovery: %v", budget, err)
		}
	}
	t.Logf("verified %d crash points over %d concurrent batches (stride %d of %d units)",
		points, totalBatches, stride, total)
}
