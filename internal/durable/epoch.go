package durable

import (
	"fmt"

	"dynfd/internal/wal"
)

// Epoch returns the fencing epoch the engine's state belongs to (0 until
// the first promotion). Lock-free and safe from any goroutine.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// EpochStart returns the WAL sequence number at which the current epoch
// began: the sequence of the promotion record that opened it (0 for epoch
// 0). Frames at or above it belong to the current epoch's history; a
// fenced node whose tail reaches past a winner's EpochStart has diverged
// and must discard. Lock-free and safe from any goroutine.
func (e *Engine) EpochStart() uint64 { return e.epochStart.Load() }

// Promote durably bumps the fencing epoch by one: it appends a promotion
// record to the WAL — consuming one sequence number, so the record ships
// in-band to followers through the feed — and returns the new epoch only
// once the record is synced. After a crash, replay restores the epoch from
// the record (or from the checkpoint it was folded into), so a promotion
// that returned nil is never forgotten. Like Stage, calls must be
// externally serialized.
func (e *Engine) Promote() (uint64, error) {
	if err := e.Poisoned(); err != nil {
		return 0, fmt.Errorf("durable: engine poisoned, refusing promotion: %w", err)
	}
	epoch := e.epoch.Load() + 1
	seq := e.seq.Load() + 1
	if err := e.stagePromotion(seq, epoch, wal.EncodePromotion(epoch)); err != nil {
		return 0, err
	}
	return epoch, nil
}

// stagePromotion runs one promotion record through the commit pipeline:
// append unsynced, advance seq/epoch/epochStart, rebuild the result
// snapshot at the new sequence (the data state is unchanged — only the
// watermark moves), ship the record through the feed, and wait for the
// group fsync. Promotions are rare, so the stage/wait split is not worth
// exposing; the record is durable when this returns nil. Callers must hold
// the external staging serialization.
func (e *Engine) stagePromotion(seq, epoch uint64, payload []byte) error {
	if err := e.committer.Reserve(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := e.log.Append(seq, payload); err != nil {
		// Same torn-record hazard as Stage: further appends would bury it.
		e.committer.Release()
		e.poison(err)
		return err
	}
	defer e.committer.Release()
	e.committer.Appended(seq)
	e.seq.Store(seq)
	e.epoch.Store(epoch)
	e.epochStart.Store(seq)
	e.lastStaged = e.eng.BuildResults(e.lastStaged, seq, e.columns, nil, nil)
	if e.feed != nil {
		e.feed.Append(seq, payload)
	}
	e.sinceCheckpoint++
	if err := e.committer.WaitSynced(seq); err != nil {
		e.poison(err)
		return err
	}
	e.publish(e.lastStaged)
	if e.feed != nil {
		e.feed.Durable(seq)
	}
	return nil
}
