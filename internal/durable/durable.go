package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynfd/internal/core"
	"dynfd/internal/dataset"
	"dynfd/internal/fd"
	"dynfd/internal/results"
	"dynfd/internal/stream"
	"dynfd/internal/wal"
)

// Checkpoint blob format identifiers; version bumps guard incompatible
// layout changes.
const (
	checkpointFormat  = "dynfd-checkpoint"
	checkpointVersion = 1
)

// DefaultCheckpointEvery is the automatic checkpoint interval (in applied
// batches) when Options.CheckpointEvery is zero.
const DefaultCheckpointEvery = 64

// checkpoint is the JSON layout of a checkpoint blob: the engine snapshot
// plus the WAL sequence number it covers — recovery replays only log
// records with a higher sequence.
type checkpoint struct {
	Format  string         `json:"format"`
	Version int            `json:"version"`
	Seq     uint64         `json:"seq"`
	Columns []string       `json:"columns"`
	Engine  *core.Snapshot `json:"engine"`
	// Epoch is the fencing epoch the state belongs to and EpochStart the
	// WAL sequence at which that epoch began (DESIGN.md §16). Both are 0
	// for a store that has never been promoted, so pre-failover checkpoints
	// decode unchanged.
	Epoch      uint64 `json:"epoch,omitempty"`
	EpochStart uint64 `json:"epoch_start,omitempty"`
}

// Options configures Open.
type Options struct {
	// Columns is the schema. Required for a fresh store; for an existing
	// store it is verified against the recovered checkpoint (nil skips the
	// check and adopts the stored schema).
	Columns []string
	// Config is the engine configuration for a fresh store. A recovered
	// store keeps the configuration stored in its checkpoint.
	Config core.Config
	// CheckpointEvery is the number of applied batches between automatic
	// checkpoints; 0 means DefaultCheckpointEvery, negative disables
	// automatic checkpoints (the WAL then grows until an explicit
	// Checkpoint or Close).
	CheckpointEvery int
	// SyncMaxDelay is the group committer's linger window: how long a
	// commit leader waits before running the group fsync, so concurrent
	// batches coalesce into one sync. 0 syncs immediately (concurrent
	// waiters still coalesce — the linger only grows groups further at
	// the price of latency).
	SyncMaxDelay time.Duration
	// CommitQueue bounds the number of batches staged but not yet
	// durable; Stage rejects cleanly with wal.ErrCommitQueueFull beyond
	// it. 0 means unbounded.
	CommitQueue int
	// Feed, when set, receives every committed batch for WAL-shipping
	// replication: Stage appends each staged payload, and the durability
	// watermark advances as batches are covered by fsyncs or checkpoints.
	Feed ChangeFeed
}

// Engine wraps a core engine with write-ahead durability. The commit of a
// batch is split in two (DESIGN.md §14): Stage prechecks the batch,
// appends it to the WAL unsynced, applies it in memory, and builds the
// next result snapshot; the returned Pending's Wait then makes it durable
// through the group committer — concurrent waiters coalesce into shared
// fsyncs — and publishes the snapshot once covered. Apply = Stage + Wait,
// preserving the original contract: a nil return means the batch survives
// any subsequent crash, and a batch rejected before its append is wholly
// absent after one.
//
// Concurrency contract: Stage, Checkpoint, Bootstrap, and Close must be
// externally serialized (the runtime holds the tenant mutation lock), but
// Pending.Wait is called outside that lock and may overlap everything
// except Close. Snapshot is lock-free and always safe.
type Engine struct {
	st      Storage
	log     *wal.Log
	eng     *core.Engine
	columns []string
	feed    ChangeFeed // nil unless the engine is a replication primary

	seq             atomic.Uint64 // sequence number of the last staged batch
	sinceCheckpoint int           // batches staged since the last checkpoint
	checkpointEvery int           // 0 disables automatic checkpoints

	// epoch is the fencing epoch the state belongs to and epochStart the
	// WAL sequence the epoch began at — both advanced only by a durable
	// promotion record (DESIGN.md §16) or an epoch-forced checkpoint
	// install. Read lock-free by the replication server's fencing checks.
	epoch      atomic.Uint64
	epochStart atomic.Uint64

	// lastCheckpoint is the outcome of the most recent checkpoint attempt.
	// It has its own lock because health probes read it from arbitrary
	// goroutines while Stage (externally serialized) writes it.
	cpMu           sync.Mutex
	lastCheckpoint error

	committer *wal.GroupCommitter

	// lastStaged is the snapshot of the last staged batch — the
	// copy-on-write predecessor of the next one. Guarded by the external
	// serialization of Stage. published is the atomic publication point
	// read by the lock-free query path; pubMu orders concurrent
	// publishers (publication is monotone in seq, never torn).
	lastStaged *results.Snapshot
	published  atomic.Pointer[results.Snapshot]
	pubMu      sync.Mutex

	// poisoned is set when the durable and in-memory states may have
	// diverged: a WAL append/sync failure (the log may hold a torn record
	// that a further append would bury), an in-memory apply failure after
	// the batch was logged, or a core-engine poisoning. Every further
	// Stage fails fast; reads stay available. Guarded by poisonMu — Stage
	// runs under the external lock but Wait's sync failures arrive from
	// arbitrary goroutines.
	poisonMu sync.Mutex
	poisoned error
}

// poison records the first poisoning cause and propagates it to the
// committer so stuck waiters fail instead of hanging.
func (e *Engine) poison(err error) {
	e.poisonMu.Lock()
	if e.poisoned == nil && err != nil {
		e.poisoned = err
	}
	e.poisonMu.Unlock()
	if e.committer != nil {
		e.committer.Poison(err)
	}
}

// Open loads or initializes a durable engine on the given storage.
//
// Recovery sequence (DESIGN.md §11): read the checkpoint and restore the
// engine from it (a fresh store starts an empty engine and writes an
// initial checkpoint instead); scan the WAL, truncating the torn tail at
// the first incomplete or corrupt record; replay, in order, every record
// whose sequence number exceeds the checkpoint's (records at or below it
// are remnants of a checkpoint whose log reset was interrupted — already
// folded in, skipped); finally fold the replayed suffix into a fresh
// checkpoint and reset the log, so recovery converges in one step no
// matter how often it is interrupted.
func Open(st Storage, opts Options) (*Engine, error) {
	e := &Engine{
		st:              st,
		log:             wal.NewLog(st.Log()),
		checkpointEvery: opts.CheckpointEvery,
	}
	if e.checkpointEvery == 0 {
		e.checkpointEvery = DefaultCheckpointEvery
	} else if e.checkpointEvery < 0 {
		e.checkpointEvery = 0
	}

	blob, ok, err := st.ReadCheckpoint()
	if err != nil {
		return nil, err
	}
	if !ok {
		if len(opts.Columns) == 0 {
			return nil, fmt.Errorf("durable: fresh store needs a schema (no checkpoint found and no columns given)")
		}
		e.columns = append([]string(nil), opts.Columns...)
		e.eng = core.NewEmpty(len(e.columns), opts.Config)
		// Persist the empty state immediately so the schema is on disk and
		// every later recovery finds a checkpoint.
		if err := e.writeCheckpoint(); err != nil {
			return nil, err
		}
		if err := e.log.Reset(); err != nil {
			return nil, err
		}
		e.finishOpen(opts)
		return e, nil
	}

	cp, err := decodeCheckpoint(blob)
	if err != nil {
		return nil, err
	}
	if opts.Columns != nil && !equalColumns(opts.Columns, cp.Columns) {
		return nil, fmt.Errorf("durable: schema mismatch: store has %v, caller wants %v", cp.Columns, opts.Columns)
	}
	e.columns = cp.Columns
	e.seq.Store(cp.Seq)
	e.epoch.Store(cp.Epoch)
	e.epochStart.Store(cp.EpochStart)
	e.eng, err = core.Restore(cp.Engine)
	if err != nil {
		return nil, fmt.Errorf("durable: restoring checkpoint: %w", err)
	}

	data, err := st.ReadLog()
	if err != nil {
		return nil, err
	}
	recs, validLen := wal.Scan(data)
	if validLen < int64(len(data)) {
		// Torn tail: a crash interrupted the append of the last record
		// before its fsync completed, so it was never acknowledged.
		if err := e.log.Truncate(validLen); err != nil {
			return nil, err
		}
	}
	replayed := false
	seq := cp.Seq
	for _, rec := range recs {
		if rec.Seq <= cp.Seq {
			if replayed {
				return nil, fmt.Errorf("durable: WAL sequence %d out of order after replaying past %d", rec.Seq, seq)
			}
			continue // folded into the checkpoint already
		}
		if rec.Seq != seq+1 {
			return nil, fmt.Errorf("durable: WAL gap: have state at seq %d, next record is seq %d", seq, rec.Seq)
		}
		if wal.IsControl(rec.Payload) {
			// A promotion record: it consumes a sequence number but mutates
			// only the fencing epoch, which must survive crash/replay.
			epoch, err := wal.DecodePromotion(rec.Payload)
			if err != nil {
				return nil, fmt.Errorf("durable: WAL record %d: %w", rec.Seq, err)
			}
			if epoch <= e.epoch.Load() {
				return nil, fmt.Errorf("durable: WAL record %d promotes to epoch %d, not above %d", rec.Seq, epoch, e.epoch.Load())
			}
			e.epoch.Store(epoch)
			e.epochStart.Store(rec.Seq)
			seq = rec.Seq
			replayed = true
			continue
		}
		changes, err := stream.ReadChanges(bytes.NewReader(rec.Payload))
		if err != nil {
			return nil, fmt.Errorf("durable: WAL record %d: %w", rec.Seq, err)
		}
		if _, err := e.eng.ApplyBatch(stream.Batch{Changes: changes}); err != nil {
			return nil, fmt.Errorf("durable: replaying WAL record %d: %w", rec.Seq, err)
		}
		seq = rec.Seq
		replayed = true
	}
	e.seq.Store(seq)
	if len(recs) > 0 || validLen < int64(len(data)) {
		// Fold the replayed suffix in so a crash during the next run never
		// has to replay it again, and the log starts empty.
		if err := e.writeCheckpoint(); err != nil {
			return nil, err
		}
		if err := e.log.Reset(); err != nil {
			return nil, err
		}
	}
	e.finishOpen(opts)
	return e, nil
}

// finishOpen wires up the group committer and publishes the initial
// result snapshot: everything recovered is durable, so the snapshot is
// visible to the lock-free read path before Open returns.
func (e *Engine) finishOpen(opts Options) {
	e.committer = wal.NewGroupCommitter(e.log.Sync, e.seq.Load(), opts.SyncMaxDelay, opts.CommitQueue)
	e.lastStaged = e.eng.BuildResults(nil, e.seq.Load(), e.columns, nil, nil)
	e.published.Store(e.lastStaged)
	e.feed = opts.Feed
	if e.feed != nil {
		// Everything recovered is durable; the feed starts shipping at the
		// next staged batch.
		e.feed.Durable(e.seq.Load())
	}
}

func decodeCheckpoint(blob []byte) (*checkpoint, error) {
	var cp checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		return nil, fmt.Errorf("durable: decoding checkpoint: %w", err)
	}
	if cp.Format != checkpointFormat {
		return nil, fmt.Errorf("durable: not a checkpoint (format %q, want %q)", cp.Format, checkpointFormat)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("durable: unsupported checkpoint version %d (want %d)", cp.Version, checkpointVersion)
	}
	if cp.Engine == nil || len(cp.Columns) != cp.Engine.NumAttrs {
		return nil, fmt.Errorf("durable: checkpoint schema inconsistent")
	}
	return &cp, nil
}

func equalColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeCheckpoint persists the current engine state tagged with the
// current sequence number.
func (e *Engine) writeCheckpoint() error {
	blob, err := json.Marshal(checkpoint{
		Format:     checkpointFormat,
		Version:    checkpointVersion,
		Seq:        e.seq.Load(),
		Columns:    e.columns,
		Engine:     e.eng.Snapshot(),
		Epoch:      e.epoch.Load(),
		EpochStart: e.epochStart.Load(),
	})
	if err != nil {
		return fmt.Errorf("durable: encoding checkpoint: %w", err)
	}
	if err := e.st.WriteCheckpoint(blob); err != nil {
		return err
	}
	e.sinceCheckpoint = 0
	return nil
}

// Checkpoint folds the WAL into a fresh engine snapshot: the snapshot is
// atomically replaced first, then the log is reset. A crash between the
// two steps is safe — recovery skips log records at or below the
// checkpoint's sequence number. Like Stage, it must be externally
// serialized; the log reset runs inside the committer's Exclusive bracket
// so it never overlaps an in-flight group fsync, and a successful
// checkpoint counts as durability for every staged batch (the engine
// state it persisted includes them all), so covered waiters are released
// without an fsync.
func (e *Engine) Checkpoint() error {
	if err := e.Poisoned(); err != nil {
		return fmt.Errorf("durable: engine poisoned, refusing checkpoint: %w", err)
	}
	err := e.checkpointLocked()
	e.setLastCheckpoint(err)
	return err
}

func (e *Engine) setLastCheckpoint(err error) {
	e.cpMu.Lock()
	e.lastCheckpoint = err
	e.cpMu.Unlock()
}

// checkpointLocked writes the checkpoint and resets the log under the
// committer's exclusive bracket. Callers must hold the external
// serialization (no concurrent Stage).
func (e *Engine) checkpointLocked() error {
	if err := e.writeCheckpoint(); err != nil {
		return err
	}
	// The checkpoint covers every staged batch — release their waiters
	// even if the log reset below fails (recovery skips records at or
	// below the checkpoint's sequence either way).
	e.committer.MarkSynced(e.seq.Load())
	e.publish(e.lastStaged)
	if e.feed != nil {
		e.feed.Durable(e.seq.Load())
	}
	return e.committer.Exclusive(e.log.Reset)
}

// publish makes snap the published snapshot unless a newer one already
// is; publication is monotone in sequence number.
func (e *Engine) publish(snap *results.Snapshot) {
	if snap == nil {
		return
	}
	e.pubMu.Lock()
	if cur := e.published.Load(); cur == nil || snap.Seq() >= cur.Seq() {
		e.published.Store(snap)
	}
	e.pubMu.Unlock()
}

// Snapshot returns the latest published result snapshot: the state of the
// last batch known durable. It is lock-free — an atomic pointer load —
// and safe from any goroutine at any time, including concurrently with
// Stage, Checkpoint, and Close.
func (e *Engine) Snapshot() *results.Snapshot { return e.published.Load() }

// Pending is a staged batch awaiting durability. Wait blocks until the
// batch is covered by a group fsync or a checkpoint, publishes its result
// snapshot, and returns nil exactly when the batch survives any
// subsequent crash.
type Pending struct {
	e    *Engine
	seq  uint64
	snap *results.Snapshot
	done bool
}

// Stage prechecks one batch, appends it to the WAL (unsynced), applies it
// to the in-memory engine, and builds — but does not publish — the next
// result snapshot. The batch is NOT durable until the returned Pending's
// Wait returns nil. Stage calls must be externally serialized; Wait is
// meant to run outside that serialization so concurrent batches coalesce
// into shared group fsyncs.
//
// An error return means the batch was rejected cleanly (bad batch, commit
// queue full, poisoned engine) or the engine poisoned itself mid-commit;
// either way there is nothing to Wait on.
func (e *Engine) Stage(batch stream.Batch) (core.Result, *Pending, error) {
	if err := e.Poisoned(); err != nil {
		return core.Result{}, nil, fmt.Errorf("durable: engine poisoned by earlier failure, refusing batch: %w", err)
	}
	// Precheck so a bad batch is rejected before it reaches the log: the
	// WAL must only ever contain batches that apply cleanly on replay.
	if err := e.eng.CheckBatch(batch); err != nil {
		return core.Result{}, nil, err
	}
	var buf bytes.Buffer
	if err := stream.WriteChanges(&buf, batch.Changes); err != nil {
		return core.Result{}, nil, fmt.Errorf("durable: encoding batch: %w", err)
	}
	// Claim a commit-queue slot before touching the log: a full queue is
	// a clean, side-effect-free rejection. The slot is released by Wait.
	if err := e.committer.Reserve(); err != nil {
		return core.Result{}, nil, fmt.Errorf("durable: %w", err)
	}
	seq := e.seq.Load() + 1
	if err := e.log.Append(seq, buf.Bytes()); err != nil {
		// The log may now end in a torn record; appending more would bury
		// it and lose everything after it on recovery.
		e.committer.Release()
		e.poison(err)
		return core.Result{}, nil, err
	}
	e.committer.Appended(seq)
	res, err := e.eng.ApplyBatch(batch)
	if err != nil {
		// The batch is in the log (possibly about to become durable via a
		// concurrent group sync) but not in memory: the two states have
		// diverged (unreachable for prechecked batches — a worker panic
		// is the realistic cause).
		e.committer.Release()
		perr := fmt.Errorf("durable: batch %d logged but not applied: %w", seq, err)
		e.poison(perr)
		return core.Result{}, nil, perr
	}
	e.seq.Store(seq)
	e.lastStaged = e.eng.BuildResults(e.lastStaged, seq, e.columns, res.Added, res.Removed)
	if e.feed != nil {
		// buf is local to this Stage, so the feed takes ownership of the
		// payload without a copy. Not shippable until durable.
		e.feed.Append(seq, buf.Bytes())
	}
	p := &Pending{e: e, seq: seq, snap: e.lastStaged}
	e.sinceCheckpoint++
	if e.checkpointEvery > 0 && e.sinceCheckpoint >= e.checkpointEvery {
		// The automatic checkpoint persists the engine state including
		// this batch, so it doubles as the batch's durability: Wait will
		// return immediately. A failed checkpoint does not fail the Stage
		// (the group fsync still covers the batch) but is reported by
		// LastCheckpointErr.
		e.setLastCheckpoint(e.checkpointLocked())
	}
	return res, p, nil
}

// Wait blocks until the staged batch is durable, publishes its result
// snapshot, and releases the commit-queue slot. It must be called exactly
// once per successful Stage; a nil return means the batch survives any
// subsequent crash. Wait is safe to call from any goroutine — commit
// waiters coalesce into shared group fsyncs, and the calling goroutine
// may run the group's fsync itself.
func (p *Pending) Wait() error {
	if p.done {
		return fmt.Errorf("durable: Wait called twice for batch %d", p.seq)
	}
	p.done = true
	defer p.e.committer.Release()
	if err := p.e.committer.WaitSynced(p.seq); err != nil {
		p.e.poison(err)
		return err
	}
	p.e.publish(p.snap)
	if p.e.feed != nil {
		p.e.feed.Durable(p.seq)
	}
	return nil
}

// Apply makes one batch durable and applies it — Stage followed by Wait,
// for callers that serialize everything: a nil return means the batch
// survives any subsequent crash, and an error before the append means it
// is wholly absent.
func (e *Engine) Apply(batch stream.Batch) (core.Result, error) {
	res, p, err := e.Stage(batch)
	if err != nil {
		return core.Result{}, err
	}
	if err := p.Wait(); err != nil {
		return core.Result{}, err
	}
	return res, nil
}

// Bootstrap profiles initial rows with the static algorithm and makes the
// result durable. It is only valid on a store that has never held records
// or batches.
func (e *Engine) Bootstrap(rows [][]string) error {
	if err := e.Poisoned(); err != nil {
		return fmt.Errorf("durable: engine poisoned, refusing bootstrap: %w", err)
	}
	if e.seq.Load() != 0 || e.eng.NumRecords() != 0 {
		return fmt.Errorf("durable: Bootstrap requires an empty store (have %d records at seq %d)", e.eng.NumRecords(), e.seq.Load())
	}
	rel := dataset.New("relation", e.columns)
	for _, row := range rows {
		if err := rel.Append(row); err != nil {
			return err
		}
	}
	eng, err := core.Bootstrap(rel, e.eng.Config())
	if err != nil {
		return err
	}
	e.eng = eng
	if e.feed != nil {
		// A bootstrap replaces the engine state without a frame a follower
		// could replay, so it consumes one sequence number: the durability
		// jump drops the feed's ring, a tailing follower falls below the
		// floor, and catch-up installs the bootstrap checkpoint.
		e.seq.Add(1)
	}
	// The bootstrapped state must be durable before Bootstrap returns;
	// failing here leaves memory ahead of disk, so poison.
	if err := e.writeCheckpoint(); err != nil {
		e.poison(err)
		return err
	}
	if err := e.committer.Exclusive(e.log.Reset); err != nil {
		e.poison(err)
		return err
	}
	if e.feed != nil {
		e.committer.Appended(e.seq.Load())
		e.committer.MarkSynced(e.seq.Load())
		e.feed.Durable(e.seq.Load())
	}
	// The core engine was swapped out, so the snapshot chain restarts
	// from scratch (no copy-on-write predecessor).
	e.lastStaged = e.eng.BuildResults(nil, e.seq.Load(), e.columns, nil, nil)
	e.publish(e.lastStaged)
	return nil
}

// Close writes a final checkpoint (so the next Open restores without
// replay), shuts the committer down, and releases the storage. A poisoned
// engine skips the checkpoint — its in-memory state must not overwrite
// the durable one. Close must be externally serialized with Stage and
// Checkpoint; in-flight Waits are released by the final checkpoint (or
// fail with wal.ErrCommitterClosed if it could not run).
func (e *Engine) Close() error {
	var cpErr error
	if e.Poisoned() == nil {
		cpErr = e.Checkpoint()
	}
	// After this, any waiter the checkpoint did not cover fails instead
	// of hanging on a committer whose file is about to go away.
	e.committer.Close()
	if err := e.st.Close(); err != nil && cpErr == nil {
		cpErr = err
	}
	return cpErr
}

// Seq returns the sequence number of the last staged batch. It is safe
// from any goroutine (the read path reports staleness as Seq minus the
// published snapshot's sequence).
func (e *Engine) Seq() uint64 { return e.seq.Load() }

// SyncStats reports how many WAL fsyncs the commit path has performed and
// their cumulative wall-clock time — the durability cost of the write
// path. With group commit the count is O(sync groups), not O(batches).
func (e *Engine) SyncStats() (count int, total time.Duration) {
	return e.committer.Stats()
}

// Columns returns the schema.
func (e *Engine) Columns() []string { return append([]string(nil), e.columns...) }

// Core exposes the wrapped engine for reads, invariant checks, and
// snapshotting. Mutating it directly bypasses the WAL — don't.
func (e *Engine) Core() *core.Engine { return e.eng }

// Poisoned returns the error that poisoned the engine, or nil.
func (e *Engine) Poisoned() error {
	e.poisonMu.Lock()
	defer e.poisonMu.Unlock()
	return e.poisoned
}

// LastCheckpointErr returns the outcome of the most recent automatic
// checkpoint attempt (nil when it succeeded or none ran yet). Safe from
// any goroutine.
func (e *Engine) LastCheckpointErr() error {
	e.cpMu.Lock()
	defer e.cpMu.Unlock()
	return e.lastCheckpoint
}

// The read-side delegates below, together with CheckBatch and ApplyBatch,
// let a durable engine serve wherever a core engine does (the server's
// backend interface).

// CheckBatch verifies a batch would apply cleanly without touching state.
func (e *Engine) CheckBatch(batch stream.Batch) error { return e.eng.CheckBatch(batch) }

// ApplyBatch is Apply under the name the server backend expects.
func (e *Engine) ApplyBatch(batch stream.Batch) (core.Result, error) { return e.Apply(batch) }

// FDs returns the current minimal FDs.
func (e *Engine) FDs() []fd.FD { return e.eng.FDs() }

// NumRecords returns the current tuple count.
func (e *Engine) NumRecords() int { return e.eng.NumRecords() }

// Stats returns the accumulated work counters.
func (e *Engine) Stats() core.Stats { return e.eng.Stats() }
