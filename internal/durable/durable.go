package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"dynfd/internal/core"
	"dynfd/internal/dataset"
	"dynfd/internal/fd"
	"dynfd/internal/stream"
	"dynfd/internal/wal"
)

// Checkpoint blob format identifiers; version bumps guard incompatible
// layout changes.
const (
	checkpointFormat  = "dynfd-checkpoint"
	checkpointVersion = 1
)

// DefaultCheckpointEvery is the automatic checkpoint interval (in applied
// batches) when Options.CheckpointEvery is zero.
const DefaultCheckpointEvery = 64

// checkpoint is the JSON layout of a checkpoint blob: the engine snapshot
// plus the WAL sequence number it covers — recovery replays only log
// records with a higher sequence.
type checkpoint struct {
	Format  string         `json:"format"`
	Version int            `json:"version"`
	Seq     uint64         `json:"seq"`
	Columns []string       `json:"columns"`
	Engine  *core.Snapshot `json:"engine"`
}

// Options configures Open.
type Options struct {
	// Columns is the schema. Required for a fresh store; for an existing
	// store it is verified against the recovered checkpoint (nil skips the
	// check and adopts the stored schema).
	Columns []string
	// Config is the engine configuration for a fresh store. A recovered
	// store keeps the configuration stored in its checkpoint.
	Config core.Config
	// CheckpointEvery is the number of applied batches between automatic
	// checkpoints; 0 means DefaultCheckpointEvery, negative disables
	// automatic checkpoints (the WAL then grows until an explicit
	// Checkpoint or Close).
	CheckpointEvery int
}

// Engine wraps a core engine with write-ahead durability: Apply appends
// the batch to the WAL and fsyncs before mutating the in-memory engine, so
// a batch that has been acknowledged survives any crash, and a batch that
// crashed mid-write is cleanly absent after recovery. Like the core
// engine, a durable Engine is not safe for concurrent use.
type Engine struct {
	st      Storage
	log     *wal.Log
	eng     *core.Engine
	columns []string

	seq             uint64 // sequence number of the last applied batch
	sinceCheckpoint int    // batches applied since the last checkpoint
	checkpointEvery int    // 0 disables automatic checkpoints
	lastCheckpoint  error  // outcome of the most recent checkpoint attempt

	syncs     int           // WAL fsyncs performed by Apply
	syncTotal time.Duration // wall-clock time spent in those fsyncs

	// poisoned is set when the durable and in-memory states may have
	// diverged: a WAL append/sync failure (the log may hold a torn record
	// that a further append would bury), an in-memory apply failure after
	// the batch was logged, or a core-engine poisoning. Every further
	// Apply fails fast; reads stay available.
	poisoned error
}

// Open loads or initializes a durable engine on the given storage.
//
// Recovery sequence (DESIGN.md §11): read the checkpoint and restore the
// engine from it (a fresh store starts an empty engine and writes an
// initial checkpoint instead); scan the WAL, truncating the torn tail at
// the first incomplete or corrupt record; replay, in order, every record
// whose sequence number exceeds the checkpoint's (records at or below it
// are remnants of a checkpoint whose log reset was interrupted — already
// folded in, skipped); finally fold the replayed suffix into a fresh
// checkpoint and reset the log, so recovery converges in one step no
// matter how often it is interrupted.
func Open(st Storage, opts Options) (*Engine, error) {
	e := &Engine{
		st:              st,
		log:             wal.NewLog(st.Log()),
		checkpointEvery: opts.CheckpointEvery,
	}
	if e.checkpointEvery == 0 {
		e.checkpointEvery = DefaultCheckpointEvery
	} else if e.checkpointEvery < 0 {
		e.checkpointEvery = 0
	}

	blob, ok, err := st.ReadCheckpoint()
	if err != nil {
		return nil, err
	}
	if !ok {
		if len(opts.Columns) == 0 {
			return nil, fmt.Errorf("durable: fresh store needs a schema (no checkpoint found and no columns given)")
		}
		e.columns = append([]string(nil), opts.Columns...)
		e.eng = core.NewEmpty(len(e.columns), opts.Config)
		// Persist the empty state immediately so the schema is on disk and
		// every later recovery finds a checkpoint.
		if err := e.writeCheckpoint(); err != nil {
			return nil, err
		}
		if err := e.log.Reset(); err != nil {
			return nil, err
		}
		return e, nil
	}

	cp, err := decodeCheckpoint(blob)
	if err != nil {
		return nil, err
	}
	if opts.Columns != nil && !equalColumns(opts.Columns, cp.Columns) {
		return nil, fmt.Errorf("durable: schema mismatch: store has %v, caller wants %v", cp.Columns, opts.Columns)
	}
	e.columns = cp.Columns
	e.seq = cp.Seq
	e.eng, err = core.Restore(cp.Engine)
	if err != nil {
		return nil, fmt.Errorf("durable: restoring checkpoint: %w", err)
	}

	data, err := st.ReadLog()
	if err != nil {
		return nil, err
	}
	recs, validLen := wal.Scan(data)
	if validLen < int64(len(data)) {
		// Torn tail: a crash interrupted the append of the last record
		// before its fsync completed, so it was never acknowledged.
		if err := e.log.Truncate(validLen); err != nil {
			return nil, err
		}
	}
	replayed := false
	for _, rec := range recs {
		if rec.Seq <= cp.Seq {
			if replayed {
				return nil, fmt.Errorf("durable: WAL sequence %d out of order after replaying past %d", rec.Seq, e.seq)
			}
			continue // folded into the checkpoint already
		}
		if rec.Seq != e.seq+1 {
			return nil, fmt.Errorf("durable: WAL gap: have state at seq %d, next record is seq %d", e.seq, rec.Seq)
		}
		changes, err := stream.ReadChanges(bytes.NewReader(rec.Payload))
		if err != nil {
			return nil, fmt.Errorf("durable: WAL record %d: %w", rec.Seq, err)
		}
		if _, err := e.eng.ApplyBatch(stream.Batch{Changes: changes}); err != nil {
			return nil, fmt.Errorf("durable: replaying WAL record %d: %w", rec.Seq, err)
		}
		e.seq = rec.Seq
		replayed = true
	}
	if len(recs) > 0 || validLen < int64(len(data)) {
		// Fold the replayed suffix in so a crash during the next run never
		// has to replay it again, and the log starts empty.
		if err := e.writeCheckpoint(); err != nil {
			return nil, err
		}
		if err := e.log.Reset(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func decodeCheckpoint(blob []byte) (*checkpoint, error) {
	var cp checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		return nil, fmt.Errorf("durable: decoding checkpoint: %w", err)
	}
	if cp.Format != checkpointFormat {
		return nil, fmt.Errorf("durable: not a checkpoint (format %q, want %q)", cp.Format, checkpointFormat)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("durable: unsupported checkpoint version %d (want %d)", cp.Version, checkpointVersion)
	}
	if cp.Engine == nil || len(cp.Columns) != cp.Engine.NumAttrs {
		return nil, fmt.Errorf("durable: checkpoint schema inconsistent")
	}
	return &cp, nil
}

func equalColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeCheckpoint persists the current engine state tagged with the
// current sequence number.
func (e *Engine) writeCheckpoint() error {
	blob, err := json.Marshal(checkpoint{
		Format:  checkpointFormat,
		Version: checkpointVersion,
		Seq:     e.seq,
		Columns: e.columns,
		Engine:  e.eng.Snapshot(),
	})
	if err != nil {
		return fmt.Errorf("durable: encoding checkpoint: %w", err)
	}
	if err := e.st.WriteCheckpoint(blob); err != nil {
		return err
	}
	e.sinceCheckpoint = 0
	return nil
}

// Checkpoint folds the WAL into a fresh engine snapshot: the snapshot is
// atomically replaced first, then the log is reset. A crash between the
// two steps is safe — recovery skips log records at or below the
// checkpoint's sequence number.
func (e *Engine) Checkpoint() error {
	if e.poisoned != nil {
		return fmt.Errorf("durable: engine poisoned, refusing checkpoint: %w", e.poisoned)
	}
	if err := e.writeCheckpoint(); err != nil {
		e.lastCheckpoint = err
		return err
	}
	if err := e.log.Reset(); err != nil {
		e.lastCheckpoint = err
		return err
	}
	e.lastCheckpoint = nil
	return nil
}

// Apply makes one batch durable and applies it: the batch is prechecked,
// appended to the WAL, fsynced, and only then applied to the in-memory
// engine — so a nil return means the batch survives any subsequent crash,
// and an error before the fsync means it is wholly absent.
//
// Automatic checkpoints run after every CheckpointEvery applied batches; a
// failed checkpoint does not fail the Apply (the batch is already durable
// in the WAL) but is reported by LastCheckpointErr.
func (e *Engine) Apply(batch stream.Batch) (core.Result, error) {
	if e.poisoned != nil {
		return core.Result{}, fmt.Errorf("durable: engine poisoned by earlier failure, refusing batch: %w", e.poisoned)
	}
	// Precheck so a bad batch is rejected before it reaches the log: the
	// WAL must only ever contain batches that apply cleanly on replay.
	if err := e.eng.CheckBatch(batch); err != nil {
		return core.Result{}, err
	}
	var buf bytes.Buffer
	if err := stream.WriteChanges(&buf, batch.Changes); err != nil {
		return core.Result{}, fmt.Errorf("durable: encoding batch: %w", err)
	}
	if err := e.log.Append(e.seq+1, buf.Bytes()); err != nil {
		// The log may now end in a torn record; appending more would bury
		// it and lose everything after it on recovery.
		e.poisoned = err
		return core.Result{}, err
	}
	syncStart := time.Now()
	if err := e.log.Sync(); err != nil {
		e.poisoned = err
		return core.Result{}, err
	}
	e.syncs++
	e.syncTotal += time.Since(syncStart)
	res, err := e.eng.ApplyBatch(batch)
	if err != nil {
		// The batch is durable but the in-memory state is not: the two
		// have diverged (this should be unreachable for prechecked
		// batches — a worker panic is the realistic cause).
		e.poisoned = fmt.Errorf("durable: batch %d logged but not applied: %w", e.seq+1, err)
		return core.Result{}, e.poisoned
	}
	e.seq++
	e.sinceCheckpoint++
	if e.checkpointEvery > 0 && e.sinceCheckpoint >= e.checkpointEvery {
		if err := e.writeCheckpoint(); err != nil {
			e.lastCheckpoint = err
		} else if err := e.log.Reset(); err != nil {
			e.lastCheckpoint = err
		} else {
			e.lastCheckpoint = nil
		}
	}
	return res, nil
}

// Bootstrap profiles initial rows with the static algorithm and makes the
// result durable. It is only valid on a store that has never held records
// or batches.
func (e *Engine) Bootstrap(rows [][]string) error {
	if e.poisoned != nil {
		return fmt.Errorf("durable: engine poisoned, refusing bootstrap: %w", e.poisoned)
	}
	if e.seq != 0 || e.eng.NumRecords() != 0 {
		return fmt.Errorf("durable: Bootstrap requires an empty store (have %d records at seq %d)", e.eng.NumRecords(), e.seq)
	}
	rel := dataset.New("relation", e.columns)
	for _, row := range rows {
		if err := rel.Append(row); err != nil {
			return err
		}
	}
	eng, err := core.Bootstrap(rel, e.eng.Config())
	if err != nil {
		return err
	}
	e.eng = eng
	// The bootstrapped state must be durable before Bootstrap returns;
	// failing here leaves memory ahead of disk, so poison.
	if err := e.writeCheckpoint(); err != nil {
		e.poisoned = err
		return err
	}
	if err := e.log.Reset(); err != nil {
		e.poisoned = err
		return err
	}
	return nil
}

// Close writes a final checkpoint (so the next Open restores without
// replay) and releases the storage. A poisoned engine skips the checkpoint
// — its in-memory state must not overwrite the durable one.
func (e *Engine) Close() error {
	var cpErr error
	if e.poisoned == nil {
		cpErr = e.Checkpoint()
	}
	if err := e.st.Close(); err != nil && cpErr == nil {
		cpErr = err
	}
	return cpErr
}

// Seq returns the sequence number of the last durably applied batch.
func (e *Engine) Seq() uint64 { return e.seq }

// SyncStats reports how many WAL fsyncs Apply has performed and their
// cumulative wall-clock time — the durability cost of the write path.
func (e *Engine) SyncStats() (count int, total time.Duration) {
	return e.syncs, e.syncTotal
}

// Columns returns the schema.
func (e *Engine) Columns() []string { return append([]string(nil), e.columns...) }

// Core exposes the wrapped engine for reads, invariant checks, and
// snapshotting. Mutating it directly bypasses the WAL — don't.
func (e *Engine) Core() *core.Engine { return e.eng }

// Poisoned returns the error that poisoned the engine, or nil.
func (e *Engine) Poisoned() error { return e.poisoned }

// LastCheckpointErr returns the outcome of the most recent automatic
// checkpoint attempt (nil when it succeeded or none ran yet).
func (e *Engine) LastCheckpointErr() error { return e.lastCheckpoint }

// The read-side delegates below, together with CheckBatch and ApplyBatch,
// let a durable engine serve wherever a core engine does (the server's
// backend interface).

// CheckBatch verifies a batch would apply cleanly without touching state.
func (e *Engine) CheckBatch(batch stream.Batch) error { return e.eng.CheckBatch(batch) }

// ApplyBatch is Apply under the name the server backend expects.
func (e *Engine) ApplyBatch(batch stream.Batch) (core.Result, error) { return e.Apply(batch) }

// FDs returns the current minimal FDs.
func (e *Engine) FDs() []fd.FD { return e.eng.FDs() }

// NumRecords returns the current tuple count.
func (e *Engine) NumRecords() int { return e.eng.NumRecords() }

// Stats returns the accumulated work counters.
func (e *Engine) Stats() core.Stats { return e.eng.Stats() }
