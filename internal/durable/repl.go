package durable

import (
	"bytes"
	"fmt"

	"dynfd/internal/core"
	"dynfd/internal/stream"
	"dynfd/internal/wal"
)

// ChangeFeed receives every change the engine commits, for WAL-shipping
// replication (DESIGN.md §15). Append delivers each staged batch's encoded
// payload in sequence order (called under the engine's external staging
// serialization; the payload is handed over and never modified again);
// Durable advances the durability watermark — only frames at or below it
// may be shipped to followers, so a follower can never hold a batch a
// crashed primary would lose. Durable is called from arbitrary goroutines
// and may jump past Append's high-water mark when a checkpoint replaces
// the engine state wholesale.
//
// repl.Feed is the implementation; durable only sees this interface to
// avoid the dependency.
type ChangeFeed interface {
	Append(seq uint64, payload []byte)
	Durable(seq uint64)
	// Rewind resets the feed to seq after a checkpoint install replaced the
	// engine state at a position that may lie BEHIND the retained frames:
	// the retained tail belongs to a discarded history and must never be
	// shipped again (DESIGN.md §16).
	Rewind(seq uint64)
}

// ApplyReplicated applies one frame shipped from a replication primary:
// the payload is the stream-codec batch encoding exactly as the primary
// logged it, and seq must be exactly Seq()+1 — the follower's replay is a
// gapless prefix of the primary's history. The batch runs through the
// normal Apply path, so the replica assigns the same sequence, logs to its
// own WAL, and group-commits like any local write; a nil return means the
// frame survives any subsequent crash of the replica.
//
// Like Stage, calls must be externally serialized.
func (e *Engine) ApplyReplicated(seq uint64, payload []byte) error {
	if want := e.seq.Load() + 1; seq != want {
		return fmt.Errorf("durable: replicated frame has seq %d, engine expects %d", seq, want)
	}
	if wal.IsControl(payload) {
		// A promotion record shipped in-band: the upstream primary was
		// promoted into a new epoch, and the follower adopts it at the same
		// sequence so epoch history stays identical across the cluster.
		epoch, err := wal.DecodePromotion(payload)
		if err != nil {
			return fmt.Errorf("durable: replicated frame %d: %w", seq, err)
		}
		if cur := e.epoch.Load(); epoch <= cur {
			return fmt.Errorf("durable: replicated frame %d promotes to epoch %d, engine already at %d", seq, epoch, cur)
		}
		if err := e.Poisoned(); err != nil {
			return fmt.Errorf("durable: engine poisoned, refusing replicated promotion: %w", err)
		}
		return e.stagePromotion(seq, epoch, payload)
	}
	changes, err := stream.ReadChanges(bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("durable: decoding replicated frame %d: %w", seq, err)
	}
	_, err = e.Apply(stream.Batch{Changes: changes})
	return err
}

// CheckpointBlob returns a checkpoint blob covering at least minSeq,
// together with the sequence it actually covers. The stored checkpoint is
// served when fresh enough; otherwise a new checkpoint is forced first —
// so the blob a follower installs can always be continued from the
// primary's retained frame stream (the caller passes the feed's floor as
// minSeq). Like Checkpoint, calls must be externally serialized.
func (e *Engine) CheckpointBlob(minSeq uint64) ([]byte, uint64, error) {
	blob, ok, err := e.st.ReadCheckpoint()
	if err == nil && ok {
		if cp, derr := decodeCheckpoint(blob); derr == nil && cp.Seq >= minSeq {
			return blob, cp.Seq, nil
		}
	}
	if err := e.Checkpoint(); err != nil {
		return nil, 0, err
	}
	blob, ok, err = e.st.ReadCheckpoint()
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("durable: checkpoint missing right after writing one")
	}
	cp, err := decodeCheckpoint(blob)
	if err != nil {
		return nil, 0, err
	}
	return blob, cp.Seq, nil
}

// InstallCheckpoint replaces the engine's state with a primary checkpoint
// ahead of it — the follower's catch-up step when the primary no longer
// retains its position. "Ahead" means a higher sequence within the same
// epoch, or any sequence from a higher fencing epoch: the latter is how a
// fenced ex-primary discards a divergent tail the winner never shipped. The blob is persisted verbatim (atomic replace),
// the local WAL is reset, and the in-memory engine is swapped to the
// restored snapshot, so crash recovery at any interleaving converges to
// either the old state or the installed one, never a mix. Every staged
// batch is below the new sequence, so their waiters are released as
// covered. Like Stage, calls must be externally serialized.
func (e *Engine) InstallCheckpoint(blob []byte) error {
	if err := e.Poisoned(); err != nil {
		return fmt.Errorf("durable: engine poisoned, refusing checkpoint install: %w", err)
	}
	cp, err := decodeCheckpoint(blob)
	if err != nil {
		return err
	}
	if !equalColumns(cp.Columns, e.columns) {
		return fmt.Errorf("durable: checkpoint schema mismatch: store has %v, checkpoint has %v", e.columns, cp.Columns)
	}
	if cur := e.seq.Load(); cp.Seq <= cur && cp.Epoch <= e.epoch.Load() {
		// Same epoch and not ahead: nothing to gain. A checkpoint from a
		// HIGHER epoch installs even at a lower sequence — that is the
		// fenced ex-primary discarding its divergent unshipped tail in
		// favor of the winner's history (DESIGN.md §16).
		return fmt.Errorf("durable: checkpoint at seq %d epoch %d is not ahead of engine at seq %d epoch %d", cp.Seq, cp.Epoch, cur, e.epoch.Load())
	}
	eng, err := core.Restore(cp.Engine)
	if err != nil {
		return fmt.Errorf("durable: restoring installed checkpoint: %w", err)
	}
	// Persist first: once the blob is on disk, recovery lands on the
	// installed state (local WAL records all have lower sequences and are
	// skipped); before it, recovery lands on the old state. Either is
	// consistent. A failed replace leaves the old checkpoint intact, so
	// nothing is poisoned.
	if err := e.st.WriteCheckpoint(blob); err != nil {
		return err
	}
	e.sinceCheckpoint = 0
	if err := e.committer.Exclusive(e.log.Reset); err != nil {
		// Disk has the new checkpoint but the log cannot be trusted for
		// further appends.
		e.poison(err)
		return err
	}
	e.eng = eng
	e.seq.Store(cp.Seq)
	e.epoch.Store(cp.Epoch)
	e.epochStart.Store(cp.EpochStart)
	// Rewind, not Appended+MarkSynced: an epoch-forced install may move the
	// engine BACKWARDS, and a stale synced mark above cp.Seq would report
	// later batches durable without an fsync.
	e.committer.Rewind(cp.Seq)
	if e.feed != nil {
		// Rewind, not Durable: Durable is monotone, so a backwards install
		// would leave the ring holding the discarded history's frames with
		// the watermark still at the old high — and a chained downstream
		// follower re-tailing after installing the same winner checkpoint
		// would be served divergent frames onto winner state.
		e.feed.Rewind(cp.Seq)
	}
	// The core engine was swapped out: the snapshot chain restarts with no
	// copy-on-write predecessor.
	e.lastStaged = e.eng.BuildResults(nil, cp.Seq, e.columns, nil, nil)
	e.publish(e.lastStaged)
	return nil
}

// Seed writes a primary checkpoint into empty storage so the next Open
// starts a follower directly at the primary's state instead of replaying
// its whole history. It refuses storage that already holds a checkpoint.
func Seed(st Storage, blob []byte) error {
	if _, err := decodeCheckpoint(blob); err != nil {
		return err
	}
	_, ok, err := st.ReadCheckpoint()
	if err != nil {
		return err
	}
	if ok {
		return fmt.Errorf("durable: refusing to seed storage that already holds a checkpoint")
	}
	return st.WriteCheckpoint(blob)
}
