package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynfd/internal/core"
	"dynfd/internal/faultio"
	"dynfd/internal/stream"
	"dynfd/internal/wal"
)

var testColumns = []string{"a", "b", "c"}

var testRows = [][]string{
	{"1", "x", "p"},
	{"1", "x", "q"},
	{"2", "y", "p"},
	{"3", "y", "q"},
}

func testOpts() Options {
	return Options{Columns: testColumns, Config: core.DefaultConfig(), CheckpointEvery: -1}
}

func insertBatch(values ...string) stream.Batch {
	return stream.Batch{Changes: []stream.Change{{Kind: stream.Insert, Values: values}}}
}

func fdsOf(e *Engine) string { return fmt.Sprint(e.FDs()) }

func TestOpenBootstrapApplyCloseReopen(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Bootstrap(testRows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Apply(insertBatch(fmt.Sprint(i+7), "z", "r")); err != nil {
			t.Fatal(err)
		}
	}
	want := fdsOf(eng)
	wantRecords := eng.NumRecords()
	if eng.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", eng.Seq())
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2, err := Open(st2, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := fdsOf(eng2); got != want {
		t.Fatalf("FDs after reopen:\n got %s\nwant %s", got, want)
	}
	if eng2.NumRecords() != wantRecords || eng2.Seq() != 3 {
		t.Fatalf("after reopen: records=%d seq=%d, want %d/3", eng2.NumRecords(), eng2.Seq(), wantRecords)
	}
	if err := eng2.Core().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryWithoutClose models kill -9: the first engine is abandoned
// with its WAL full and no final checkpoint; a second Open on the same
// directory must replay to the exact acknowledged state.
func TestRecoveryWithoutClose(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Bootstrap(testRows); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(insertBatch("9", "x", "q")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(stream.Batch{Changes: []stream.Change{
		{Kind: stream.Delete, ID: 0},
		{Kind: stream.Update, ID: 2, Values: []string{"2", "y", "r"}},
	}}); err != nil {
		t.Fatal(err)
	}
	want := fdsOf(eng)
	// No Close: the process "dies" here with two batches only in the WAL.

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2, err := Open(st2, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Seq() != 2 {
		t.Fatalf("recovered seq = %d, want 2", eng2.Seq())
	}
	if got := fdsOf(eng2); got != want {
		t.Fatalf("FDs after recovery:\n got %s\nwant %s", got, want)
	}
	if err := eng2.Core().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailTruncated appends garbage after the valid WAL records — the
// classic torn write — and checks recovery truncates it instead of failing.
func TestTornTailTruncated(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Bootstrap(testRows); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(insertBatch("9", "x", "q")); err != nil {
		t.Fatal(err)
	}
	want := fdsOf(eng)
	st.Close() // abandon without checkpoint

	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 9, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2, err := Open(st2, testOpts())
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	if eng2.Seq() != 1 || fdsOf(eng2) != want {
		t.Fatalf("recovered seq=%d FDs=%s, want 1/%s", eng2.Seq(), fdsOf(eng2), want)
	}
}

// TestWALGapRejected removes a middle WAL record and checks recovery
// refuses to silently skip it.
func TestWALGapRejected(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Apply(insertBatch(fmt.Sprint(i), "x", "y")); err != nil {
			t.Fatal(err)
		}
	}
	st.Close() // abandon without checkpoint

	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := wal.Scan(data)
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	spliced := append(append([]byte(nil), data[:recs[0].End]...), data[recs[1].End:]...)
	if err := os.WriteFile(walPath, spliced, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := Open(st2, testOpts()); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("Open err = %v, want a WAL gap error", err)
	}
}

func TestSchemaMismatchNamed(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	opts := testOpts()
	opts.Columns = []string{"x", "y"}
	_, err = Open(st2, opts)
	if err == nil {
		t.Fatal("mismatched schema accepted")
	}
	for _, want := range []string{"a", "x", "mismatch"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestFreshStoreNeedsColumns(t *testing.T) {
	t.Parallel()
	st, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := Open(st, Options{Config: core.DefaultConfig()}); err == nil {
		t.Fatal("fresh store without columns accepted")
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	t.Parallel()
	for _, blob := range []string{
		"{",
		`{"format":"something-else","version":1}`,
		`{"format":"dynfd-checkpoint","version":99}`,
		`{"format":"dynfd-checkpoint","version":1,"columns":["a"],"engine":null}`,
	} {
		m := faultio.NewMem()
		if err := m.WriteCheckpoint([]byte(blob)); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(m, testOpts()); err == nil {
			t.Errorf("checkpoint %q accepted", blob)
		}
	}
}

func TestCheckpointEveryResetsLog(t *testing.T) {
	t.Parallel()
	m := faultio.NewMem()
	opts := testOpts()
	opts.CheckpointEvery = 2
	eng, err := Open(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(insertBatch("1", "x", "p")); err != nil {
		t.Fatal(err)
	}
	if data, _ := m.ReadLog(); len(data) == 0 {
		t.Fatal("WAL empty after first batch; checkpoint ran early")
	}
	if _, err := eng.Apply(insertBatch("2", "y", "q")); err != nil {
		t.Fatal(err)
	}
	if data, _ := m.ReadLog(); len(data) != 0 {
		t.Fatalf("WAL holds %d bytes after auto-checkpoint, want 0", len(data))
	}
	if eng.LastCheckpointErr() != nil {
		t.Fatal(eng.LastCheckpointErr())
	}
	// The checkpoint alone must reproduce the state.
	eng2, err := Open(m.Reopen(0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Seq() != 2 || eng2.NumRecords() != 2 {
		t.Fatalf("recovered seq=%d records=%d, want 2/2", eng2.Seq(), eng2.NumRecords())
	}
}

func TestBootstrapRequiresEmpty(t *testing.T) {
	t.Parallel()
	m := faultio.NewMem()
	eng, err := Open(m, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(insertBatch("1", "x", "p")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Bootstrap(testRows); err == nil {
		t.Fatal("Bootstrap accepted after a batch")
	}
}

// TestAppendFailurePoisons checks the point-of-no-return rule: once a WAL
// append fails the log may end in a torn record, so the engine must refuse
// all further writes while reads keep working.
func TestAppendFailurePoisons(t *testing.T) {
	t.Parallel()
	m := faultio.NewMem()
	eng, err := Open(m, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Bootstrap(testRows); err != nil {
		t.Fatal(err)
	}
	// Fault-free so far; now swap in a log that tears mid-record. The
	// engine caches its wal.Log, so rebuild one around a Faulty wrapper.
	eng.log = wal.NewLog(&faultio.Faulty{F: m.Log(), WriteBudget: 5, SyncBudget: -1})
	if _, err := eng.Apply(insertBatch("9", "z", "r")); err == nil {
		t.Fatal("Apply succeeded through a torn WAL write")
	}
	if eng.Poisoned() == nil {
		t.Fatal("engine not poisoned after WAL append failure")
	}
	if _, err := eng.Apply(insertBatch("8", "w", "s")); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("poisoned engine Apply err = %v", err)
	}
	if err := eng.Checkpoint(); err == nil {
		t.Fatal("poisoned engine accepted a checkpoint")
	}
	if len(eng.FDs()) == 0 {
		t.Fatal("no FDs readable from poisoned engine")
	}
}

// flakyCP fails checkpoint replacement while leaving the WAL healthy.
type flakyCP struct {
	*faultio.MemStorage
	fail bool
}

func (f *flakyCP) WriteCheckpoint(data []byte) error {
	if f.fail {
		return fmt.Errorf("checkpoint store offline")
	}
	return f.MemStorage.WriteCheckpoint(data)
}

// TestCheckpointFailureDoesNotFailApply: a failed automatic checkpoint is
// reported out of band, but the Apply that triggered it already made the
// batch durable in the WAL and must succeed — and recovery from the WAL
// alone reproduces the state.
func TestCheckpointFailureDoesNotFailApply(t *testing.T) {
	t.Parallel()
	st := &flakyCP{MemStorage: faultio.NewMem()}
	opts := testOpts()
	opts.CheckpointEvery = 1
	eng, err := Open(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	st.fail = true
	if _, err := eng.Apply(insertBatch("1", "x", "p")); err != nil {
		t.Fatalf("Apply failed on checkpoint error: %v", err)
	}
	if eng.LastCheckpointErr() == nil {
		t.Fatal("checkpoint failure not reported")
	}
	if _, err := eng.Apply(insertBatch("2", "y", "q")); err != nil {
		t.Fatalf("second Apply failed: %v", err)
	}
	want := fdsOf(eng)

	eng2, err := Open(st.MemStorage.Reopen(1<<20), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Seq() != 2 || fdsOf(eng2) != want {
		t.Fatalf("recovered seq=%d FDs=%s, want 2/%s", eng2.Seq(), fdsOf(eng2), want)
	}
}

// TestStaleRecordsSkipped covers a crash between checkpoint replacement
// and log reset: the log still holds records the checkpoint already
// includes, and recovery must skip them instead of double-applying.
func TestStaleRecordsSkipped(t *testing.T) {
	t.Parallel()
	m := faultio.NewMem()
	eng, err := Open(m, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(insertBatch("1", "x", "p")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(insertBatch("2", "y", "q")); err != nil {
		t.Fatal(err)
	}
	// Write the checkpoint by hand without resetting the log — exactly the
	// state a crash between the two steps leaves behind.
	if err := eng.writeCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if data, _ := m.ReadLog(); len(data) == 0 {
		t.Fatal("test needs a non-empty log")
	}
	eng2, err := Open(m.Reopen(1<<20), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Seq() != 2 || eng2.NumRecords() != 2 {
		t.Fatalf("recovered seq=%d records=%d, want 2/2", eng2.Seq(), eng2.NumRecords())
	}
	if err := eng2.Core().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
