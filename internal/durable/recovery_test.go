package durable

import (
	"fmt"
	"math/rand"
	"testing"

	"dynfd/internal/core"
	"dynfd/internal/dataset"
	"dynfd/internal/faultio"
	"dynfd/internal/stream"
)

// stateSnap is the observable state the recovery property compares:
// both covers and the record count.
type stateSnap struct {
	fds, nonFDs string
	records     int
}

func captureState(e *core.Engine) stateSnap {
	return stateSnap{
		fds:     fmt.Sprint(e.FDs()),
		nonFDs:  fmt.Sprint(e.NonFDs()),
		records: e.NumRecords(),
	}
}

// genWorkload builds a deterministic random change stream over a 3-column
// schema together with the no-crash oracle: states[i] is the exact engine
// state after bootstrap plus the first i batches.
func genWorkload(t *testing.T, cfg core.Config, numBatches int) (rows [][]string, batches []stream.Batch, states []stateSnap) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	domain := []string{"u", "v", "w"}
	randRow := func() []string {
		return []string{domain[rng.Intn(3)], domain[rng.Intn(3)], domain[rng.Intn(3)]}
	}
	rel := dataset.New("r", testColumns)
	var live []int64
	for i := 0; i < 5; i++ {
		row := randRow()
		if err := rel.Append(row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
		live = append(live, int64(i))
	}
	oracle, err := core.Bootstrap(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	states = append(states, captureState(oracle)) // states[0]: after bootstrap

	for b := 0; b < numBatches; b++ {
		var batch stream.Batch
		// Targets for deletes/updates: distinct pre-batch live ids.
		perm := rng.Perm(len(live))
		nextTarget := 0
		dead := map[int64]bool{}
		for n := 1 + rng.Intn(3); n > 0; n-- {
			switch op := rng.Intn(4); {
			case op == 0 && nextTarget < len(perm): // delete
				id := live[perm[nextTarget]]
				nextTarget++
				dead[id] = true
				batch.Changes = append(batch.Changes, stream.Change{Kind: stream.Delete, ID: id})
			case op == 1 && nextTarget < len(perm): // update
				id := live[perm[nextTarget]]
				nextTarget++
				dead[id] = true
				batch.Changes = append(batch.Changes, stream.Change{Kind: stream.Update, ID: id, Values: randRow()})
			default: // insert
				batch.Changes = append(batch.Changes, stream.Change{Kind: stream.Insert, Values: randRow()})
			}
		}
		res, err := oracle.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("oracle batch %d: %v", b, err)
		}
		var next []int64
		for _, id := range live {
			if !dead[id] {
				next = append(next, id)
			}
		}
		live = append(next, res.InsertedIDs...)
		batches = append(batches, batch)
		states = append(states, captureState(oracle))
	}
	return rows, batches, states
}

// TestCrashRecoveryEquivalence is the fault-injection property test of the
// durability layer: for a random change stream and a crash injected at
// every storage operation unit (every WAL byte, every fsync, every
// checkpoint replacement, every truncate), recovery from the surviving
// bytes must yield covers bit-identical to the no-crash oracle at some
// batch boundary at or past the last acknowledged batch — i.e. no acked
// batch is ever lost and no batch is ever half-applied.
func TestCrashRecoveryEquivalence(t *testing.T) {
	cfg := core.DefaultConfig()
	rows, batches, states := genWorkload(t, cfg, 8)
	empty := captureState(core.NewEmpty(len(testColumns), cfg))
	opts := Options{Columns: testColumns, Config: cfg, CheckpointEvery: 2}

	// run drives the full lifecycle against st until the first error,
	// returning how many batches were acknowledged and whether the
	// bootstrap was.
	run := func(st Storage) (acked int, bootAcked bool) {
		eng, err := Open(st, opts)
		if err != nil {
			return 0, false
		}
		if err := eng.Bootstrap(rows); err != nil {
			return 0, false
		}
		for i, b := range batches {
			if _, err := eng.Apply(b); err != nil {
				return i, true
			}
		}
		return len(batches), true
	}

	free := faultio.NewMem()
	if acked, _ := run(free); acked != len(batches) {
		t.Fatalf("fault-free run acked %d/%d batches", acked, len(batches))
	}
	total := free.Units()
	if total < 100 {
		t.Fatalf("suspiciously small unit count %d; workload broken?", total)
	}

	// keepUnsynced cycles through "lose everything unsynced", "keep a few
	// torn bytes", and "keep it all" so every crash point is recovered
	// under different torn-tail shapes.
	keeps := []int{0, 1, 9, 1 << 20}

	for budget := int64(0); budget <= total; budget++ {
		m := faultio.NewMemCrashAt(budget)
		acked, bootAcked := run(m)
		if budget < total && !m.Crashed() {
			t.Fatalf("budget=%d: crash never tripped", budget)
		}

		re := m.Reopen(keeps[budget%int64(len(keeps))])
		rec, err := Open(re, opts)
		if err != nil {
			t.Fatalf("budget=%d: recovery failed: %v", budget, err)
		}
		seq := int(rec.Seq())
		if bootAcked && seq < acked {
			t.Fatalf("budget=%d: acked %d batches but recovered only %d — durability lost", budget, acked, seq)
		}
		if seq > len(batches) {
			t.Fatalf("budget=%d: recovered seq %d beyond the %d-batch stream", budget, seq, len(batches))
		}
		got := captureState(rec.Core())
		want := states[seq]
		if seq == 0 && got.records == 0 && !bootAcked {
			// The bootstrap checkpoint never became durable: recovering to
			// the pre-bootstrap empty engine is correct, since Bootstrap
			// was not acknowledged.
			want = empty
		}
		if got != want {
			t.Fatalf("budget=%d keep=%d: recovered state at seq %d diverges from oracle\n got %+v\nwant %+v",
				budget, keeps[budget%int64(len(keeps))], seq, got, want)
		}
		if err := rec.Core().CheckInvariants(); err != nil {
			t.Fatalf("budget=%d: invariants after recovery: %v", budget, err)
		}

		// Recovery converged: a second Open of the same storage must be a
		// no-op landing on the identical state.
		if budget%5 == 0 {
			rec2, err := Open(re, opts)
			if err != nil {
				t.Fatalf("budget=%d: second recovery failed: %v", budget, err)
			}
			if rec2.Seq() != rec.Seq() || captureState(rec2.Core()) != got {
				t.Fatalf("budget=%d: recovery not idempotent", budget)
			}
		}
	}
	t.Logf("verified %d crash points over %d batches", total+1, len(batches))
}
