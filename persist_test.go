package dynfd

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	t.Parallel()
	m := newPaperMonitor(t)
	if _, err := m.Apply(Delete(2), Insert("Marie", "Scott", "14467", "Potsdam")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadMonitor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Columns(), m2.Columns()) {
		t.Error("columns differ")
	}
	if !reflect.DeepEqual(m.FDs(), m2.FDs()) {
		t.Errorf("FDs differ:\n%v\n%v", m.FDs(), m2.FDs())
	}
	if !reflect.DeepEqual(m.NonFDs(), m2.NonFDs()) {
		t.Error("NonFDs differ")
	}
	if m.NumRecords() != m2.NumRecords() {
		t.Error("record counts differ")
	}

	// Both monitors must evolve identically from here.
	batch := []Change{
		Insert("Zoe", "King", "99999", "Potsdam"),
		Delete(0),
	}
	d1, err := m.Apply(batch...)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m2.Apply(batch...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("diffs diverge:\n%+v\n%+v", d1, d2)
	}
	if !reflect.DeepEqual(m.FDs(), m2.FDs()) {
		t.Error("FDs diverge after post-restore batch")
	}
	// Record ids must have been preserved across the round trip.
	v1, ok1 := m.Record(1)
	v2, ok2 := m2.Record(1)
	if !ok1 || !ok2 || !reflect.DeepEqual(v1, v2) {
		t.Error("record ids not preserved")
	}
}

func TestLoadMonitorRejectsGarbage(t *testing.T) {
	t.Parallel()
	cases := []string{
		``,
		`{"format":"something-else","version":1}`,
		`{"format":"dynfd-snapshot","version":99}`,
		`{"format":"dynfd-snapshot","version":1,"columns":["a"],"engine":null}`,
		`{"format":"dynfd-snapshot","version":1,"columns":["a","b"],"engine":{"num_attrs":1}}`,
	}
	for _, in := range cases {
		if _, err := LoadMonitor(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestLoadMonitorRejectsInconsistentCovers(t *testing.T) {
	t.Parallel()
	// Hand-crafted snapshot whose covers are not duals: the positive cover
	// says ∅→b holds but the negative cover claims a→b is a maximal non-FD.
	in := `{"format":"dynfd-snapshot","version":1,"columns":["a","b"],
		"engine":{"num_attrs":2,"next_id":0,"records":null,
		"fds":[{"lhs":[],"rhs":1}],
		"non_fds":[{"lhs":[0],"rhs":1}],
		"config":{}}}`
	if _, err := LoadMonitor(strings.NewReader(in)); err == nil {
		t.Error("inconsistent covers accepted")
	}
}

func TestLoadMonitorRejectsBadRecords(t *testing.T) {
	t.Parallel()
	in := `{"format":"dynfd-snapshot","version":1,"columns":["a","b"],
		"engine":{"num_attrs":2,"next_id":0,"records":[{"id":5,"values":["x","y"]},{"id":3,"values":["p","q"]}],
		"fds":[],"non_fds":[],"config":{}}}`
	if _, err := LoadMonitor(strings.NewReader(in)); err == nil {
		t.Error("non-ascending record ids accepted")
	}
	in = `{"format":"dynfd-snapshot","version":1,"columns":["a","b"],
		"engine":{"num_attrs":2,"next_id":1,"records":[{"id":0,"values":["x"]}],
		"fds":[],"non_fds":[],"config":{}}}`
	if _, err := LoadMonitor(strings.NewReader(in)); err == nil {
		t.Error("wrong-arity record accepted")
	}
	in = `{"format":"dynfd-snapshot","version":1,"columns":["a","b"],
		"engine":{"num_attrs":2,"next_id":1,"records":null,
		"fds":[{"lhs":[7],"rhs":1}],"non_fds":[],"config":{}}}`
	if _, err := LoadMonitor(strings.NewReader(in)); err == nil {
		t.Error("out-of-range attribute accepted")
	}
}

func TestSaveLoadPreservesWitnesses(t *testing.T) {
	t.Parallel()
	// After a batch that turns FDs invalid, the negative cover carries
	// violation witnesses; a restore must keep them so validation pruning
	// keeps skipping.
	m := newPaperMonitor(t)
	if _, err := m.Apply(Insert("Max", "Jones", "14482", "Frankfurt")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "witness") {
		t.Error("snapshot carries no witnesses")
	}
	m2, err := LoadMonitor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A delete of an unrelated record should mostly skip validations via
	// the restored witnesses.
	if _, err := m2.Apply(Delete(3)); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().SkippedValidations == 0 {
		t.Error("restored monitor skipped no validations; witnesses lost")
	}
}
