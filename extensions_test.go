package dynfd

import (
	"reflect"
	"testing"
)

func TestWithKeyColumns(t *testing.T) {
	t.Parallel()
	m, err := NewMonitor([]string{"id", "a", "b"}, WithKeyColumns("id"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Bootstrap([][]string{
		{"1", "x", "p"},
		{"2", "x", "q"},
	}); err != nil {
		t.Fatal(err)
	}
	want := m.FDs()
	// Inserting with fresh ids keeps all id-lhs FDs trivially valid.
	if _, err := m.Apply(Insert("3", "y", "p")); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SkippedValidations == 0 {
		t.Error("key-column pruning skipped nothing")
	}
	// Results must match a monitor without the declaration.
	m2, _ := NewMonitor([]string{"id", "a", "b"})
	_ = m2.Bootstrap([][]string{{"1", "x", "p"}, {"2", "x", "q"}})
	_, _ = m2.Apply(Insert("3", "y", "p"))
	if !reflect.DeepEqual(m.FDs(), m2.FDs()) {
		t.Errorf("key declaration changed results:\n%v\n%v", m.FDs(), m2.FDs())
	}
	_ = want
}

func TestWithKeyColumnsUnknown(t *testing.T) {
	t.Parallel()
	if _, err := NewMonitor([]string{"a"}, WithKeyColumns("nope")); err == nil {
		t.Error("unknown key column accepted")
	}
}

func TestWithUpdateColumnPruning(t *testing.T) {
	t.Parallel()
	mk := func(opts ...Option) *Monitor {
		m, err := NewMonitor([]string{"id", "a", "b"}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Bootstrap([][]string{
			{"1", "x", "p"},
			{"2", "x", "q"},
			{"3", "y", "p"},
		}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := mk(WithUpdateColumnPruning())
	plain := mk()
	// An update touching only column b.
	batch := []Change{Update(0, "1", "x", "zz")}
	d1, err := m.Apply(batch...)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := plain.Apply(batch...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1.Added, d2.Added) || !reflect.DeepEqual(d1.Removed, d2.Removed) {
		t.Errorf("pruning changed results: %+v vs %+v", d1, d2)
	}
	if !reflect.DeepEqual(m.FDs(), plain.FDs()) {
		t.Error("FDs diverge")
	}
	if m.Stats().SkippedValidations <= plain.Stats().SkippedValidations {
		t.Errorf("update-column pruning skipped nothing (%d vs %d)",
			m.Stats().SkippedValidations, plain.Stats().SkippedValidations)
	}
	// Phase timing counters must be populated.
	st := m.Stats()
	if st.StructureTime <= 0 {
		t.Error("StructureTime not recorded")
	}
}
