package dynfd

import (
	"fmt"
	"reflect"
	"testing"
)

func TestINDMonitorLifecycle(t *testing.T) {
	t.Parallel()
	m, err := NewINDMonitor([]string{"ship_city", "city"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Bootstrap([][]string{
		{"Berlin", "Berlin"},
		{"Berlin", "Potsdam"},
	}); err != nil {
		t.Fatal(err)
	}
	// ship_city {Berlin} ⊆ city {Berlin, Potsdam}.
	if got := m.INDs(); !reflect.DeepEqual(got, []IND{{Lhs: 0, Rhs: 1}}) {
		t.Fatalf("INDs = %v", got)
	}
	ok, err := m.Holds("ship_city", "city")
	if err != nil || !ok {
		t.Error("ship_city ⊆ city should hold")
	}
	ok, err = m.Holds("city", "ship_city")
	if err != nil || ok {
		t.Error("city ⊆ ship_city should not hold")
	}
	if _, err := m.Holds("nope", "city"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := m.Holds("city", "nope"); err == nil {
		t.Error("unknown column accepted")
	}

	diff, err := m.Apply(Insert("Hamburg", "Berlin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Removed) != 1 || diff.Removed[0] != (IND{Lhs: 0, Rhs: 1}) {
		t.Errorf("Removed = %v", diff.Removed)
	}
	if got := m.FormatIND(IND{Lhs: 0, Rhs: 1}); got != "ship_city ⊆ city" {
		t.Errorf("FormatIND = %q", got)
	}
	if got := m.FormatIND(IND{Lhs: 9, Rhs: 8}); got != "col9 ⊆ col8" {
		t.Errorf("FormatIND out of range = %q", got)
	}
	if m.NumRecords() != 3 {
		t.Errorf("NumRecords = %d", m.NumRecords())
	}
}

func TestINDMonitorRules(t *testing.T) {
	t.Parallel()
	if _, err := NewINDMonitor(nil); err == nil {
		t.Error("empty schema accepted")
	}
	m, _ := NewINDMonitor([]string{"a", "b"})
	if _, err := m.Apply(Change{Kind: ChangeKind(9)}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := m.Apply(Insert("1", "1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Bootstrap(nil); err == nil {
		t.Error("Bootstrap after Apply accepted")
	}
	m2, _ := NewINDMonitor([]string{"a", "b"})
	if err := m2.Bootstrap([][]string{{"x"}}); err == nil {
		t.Error("ragged bootstrap accepted")
	}
}

func ExampleINDMonitor() {
	m, _ := NewINDMonitor([]string{"order_city", "warehouse_city"})
	_ = m.Bootstrap([][]string{
		{"Berlin", "Berlin"},
		{"Berlin", "Leipzig"},
	})
	diff, _ := m.Apply(Insert("Munich", "Leipzig"))
	for _, d := range diff.Removed {
		fmt.Println("containment lost:", m.FormatIND(d))
	}
	// Output:
	// containment lost: order_city ⊆ warehouse_city
}
