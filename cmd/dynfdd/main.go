// Command dynfdd runs DynFD as a network service. Its primary mode is a
// multi-tenant HTTP+JSON constraint service: many named datasets
// (tenants), each backed by its own crash-safe engine under
// <data-root>/<tenant>/, created, dropped, snapshotted, fed batches, and
// queried for FDs, keys, INDs, and violations over a JSON API — see
// internal/httpapi for the endpoint reference.
//
//	dynfdd -http 127.0.0.1:8080 -data-root /var/lib/dynfd
//
//	curl -XPOST localhost:8080/v1/tenants \
//	     -d '{"name":"addresses","columns":["zip","city"]}'
//	curl -XPOST localhost:8080/v1/tenants/addresses/batch \
//	     -d '{"changes":[{"op":"insert","values":["14482","Potsdam"]}]}'
//	curl localhost:8080/v1/tenants/addresses/fds
//
// Every acknowledged batch is fsynced to the tenant's write-ahead log
// before the response is sent; a crash or kill -9 loses nothing that was
// acknowledged, and a restart on the same -data-root recovers every tenant
// independently. A tenant whose engine fails is quarantined (503 on
// writes) without taking down the process or the other tenants.
//
// The original single-dataset line protocol remains available behind
// -listen, for compatibility with existing feeds:
//
//	dynfdd -listen 127.0.0.1:7070 -columns zip,city [-data-dir /var/lib/one]
//	printf '{"op":"fds"}\n' | nc 127.0.0.1 7070
//
// Both modes can run simultaneously. On SIGINT/SIGTERM the daemon stops
// accepting, drains in-flight commits, checkpoints every engine, and
// exits 0.
//
// Read endpoints (/fds, /keys, /inds, /violations, tenant listings, and
// metrics) are served from each tenant's last published result snapshot:
// they never queue behind an in-flight batch and report the snapshot's
// sequence number plus a staleness count of batches still committing.
// Writes durably commit through the group-commit WAL — concurrent batches
// on one tenant coalesce into shared fsyncs; -sync-max-delay lets the
// commit leader linger to grow those groups further (at the price of
// commit latency), and -commit-queue bounds staged-but-unsynced batches
// per engine, shedding overflow with 503 before anything is logged.
//
// WAL-shipping replication (DESIGN.md §15): a primary adds -repl-addr to
// stream every tenant's WAL tail to followers; a follower daemon runs
// with -replicate-from pointing at that address, mirrors the primary's
// tenants (seeding new ones from checkpoints, then tailing frames), and
// serves every read endpoint from its replayed snapshots. Follower read
// responses report "primary_seq" and "lag", accept ?max_lag=N bounds, and
// writes answer 403 (with -advertise on the primary, stale reads can 307
// there instead).
//
//	dynfdd -http :8080 -data-root /var/lib/dynfd -repl-addr :7071 \
//	       -advertise http://primary:8080                  # primary
//	dynfdd -http :8081 -data-root /var/lib/dynfd-replica \
//	       -replicate-from http://primary:7071             # follower
//
// Failover (DESIGN.md §16): a follower may also pass -repl-addr so that,
// once promoted, it can feed the remaining followers. When the primary
// dies, promote a follower — in place, no restart:
//
//	dynfdd -promote http://follower:8081
//
// Promotion durably bumps every tenant's fencing epoch (a WAL-recorded
// promotion record that survives crash and replay) and opens the write
// gate. If the old primary comes back, any node that observes the higher
// epoch fences it: its writes answer 403 naming the winning epoch, its
// followers re-point at the winner automatically, and restarting it with
// -replicate-from the winner discards its unshipped divergent tail via a
// checkpoint install. GET /repl/v1/status on any node reports its role,
// fence, and per-tenant replication positions; POST /repl/v1/demote
// hands a node the winning epoch and addresses explicitly. See the
// README's "Failover" section for the full three-node walkthrough.
//
// Engines default to -workers auto (one scheduler worker per CPU);
// tenants may override it at create time. -pprof-addr serves
// net/http/pprof on a separate listener for profiling a live daemon,
// e.g. scheduler contention:
//
//	dynfdd -http :8080 -data-root /var/lib/dynfd -pprof-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=30
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	goruntime "runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"dynfd/internal/core"
	"dynfd/internal/dataset"
	"dynfd/internal/durable"
	"dynfd/internal/httpapi"
	"dynfd/internal/repl"
	"dynfd/internal/runtime"
	"dynfd/internal/server"
)

func main() {
	httpAddr := flag.String("http", "", "HTTP listen address for the multi-tenant JSON API")
	dataRoot := flag.String("data-root", "", "directory holding one durable engine per tenant (required with -http)")
	listen := flag.String("listen", "", "TCP listen address for the legacy single-dataset line protocol")
	initial := flag.String("initial", "", "line protocol: CSV file with the initial relation (header = schema)")
	columns := flag.String("columns", "", "line protocol: comma-separated schema when no -initial file is given")
	batch := flag.Int("batch", 100, "line protocol: auto-commit batch size")
	workersFlag := flag.String("workers", "auto", `default maintenance parallelism per engine: "auto" = one scheduler worker per CPU, 0 = serial reference, n >= 1 = scheduler with n workers (tenants may override at create time)`)
	dataDir := flag.String("data-dir", "", "line protocol: write-ahead log directory (empty = in-memory only)")
	checkpointEvery := flag.Int("checkpoint-every", durable.DefaultCheckpointEvery, "batches between checkpoints (negative disables)")
	syncMaxDelay := flag.Duration("sync-max-delay", 0, "group-commit linger: how long a commit leader waits before the shared WAL fsync so concurrent batches coalesce (0 = sync immediately; try 1ms under heavy concurrent write load)")
	commitQueue := flag.Int("commit-queue", 0, "per-tenant bound on batches staged but not yet fsynced; overflow answers 503 before anything is logged (0 = unbounded)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060) for profiling scheduler contention; empty disables")
	replAddr := flag.String("repl-addr", "", "serve the WAL-shipping replication protocol on this address so followers can stream this daemon's tenants; empty disables")
	replicateFrom := flag.String("replicate-from", "", "run as a read-only follower of the primary whose -repl-addr is at this base URL (e.g. http://10.0.0.1:7071); mirrors its tenants and serves all reads with bounded staleness")
	advertise := flag.String("advertise", "", "public base URL of this daemon's -http API, handed to followers for write/stale-read redirects (with -repl-addr)")
	promote := flag.String("promote", "", "one-shot client mode: promote the follower daemon whose -http API is at this base URL to primary, print its new epochs, and exit")
	flag.Parse()

	if *promote != "" {
		if err := promoteNode(*promote); err != nil {
			fmt.Fprintln(os.Stderr, "dynfdd:", err)
			os.Exit(1)
		}
		return
	}
	if *httpAddr == "" && *listen == "" {
		fmt.Fprintln(os.Stderr, "dynfdd: nothing to serve: pass -http addr (multi-tenant API) and/or -listen addr (line protocol)")
		os.Exit(2)
	}
	if *httpAddr != "" && *dataRoot == "" {
		fmt.Fprintln(os.Stderr, "dynfdd: -http requires -data-root")
		os.Exit(2)
	}
	if (*replAddr != "" || *replicateFrom != "") && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "dynfdd: -repl-addr and -replicate-from require -http (the multi-tenant service)")
		os.Exit(2)
	}
	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynfdd:", err)
		os.Exit(2)
	}

	var (
		wg        sync.WaitGroup
		stops     []func() // executed in order on shutdown signal
		shutdowns []func() error
		failed    = make(chan error, 2)
	)

	// Profiling endpoint on its own listener and mux, so the debug surface
	// is never exposed on the service addresses by accident.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynfdd:", err)
			os.Exit(1)
		}
		psrv := &http.Server{Handler: mux}
		log.Printf("dynfdd: pprof on http://%s/debug/pprof/", ln.Addr())
		go func() {
			if err := psrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("dynfdd: pprof server: %v", err)
			}
		}()
		stops = append(stops, func() { psrv.Close() })
	}

	// Multi-tenant HTTP+JSON service.
	if *httpAddr != "" {
		rt, err := runtime.Open(runtime.Config{
			DataRoot:         *dataRoot,
			Workers:          workers,
			CheckpointEvery:  *checkpointEvery,
			SyncMaxDelay:     *syncMaxDelay,
			CommitQueue:      *commitQueue,
			ServeReplication: *replAddr != "",
			ReplicateFrom:    *replicateFrom,
			Logger:           log.Default(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynfdd:", err)
			os.Exit(1)
		}
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynfdd:", err)
			os.Exit(1)
		}
		hsrv := &http.Server{Handler: httpapi.New(rt).Handler()}
		switch {
		case *replicateFrom != "":
			log.Printf("dynfdd: http on %s (follower of %s, %d tenants recovered)", ln.Addr(), *replicateFrom, len(rt.List()))
		default:
			log.Printf("dynfdd: http on %s (%d tenants recovered)", ln.Addr(), len(rt.List()))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := hsrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				failed <- err
			}
		}()
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			hsrv.Shutdown(ctx)
		})

		// Replication endpoint on its own listener, so WAL streams never
		// share the public API address.
		if *replAddr != "" {
			rsrv := repl.NewServer(rt)
			rsrv.Advertise = *advertise
			rln, err := net.Listen("tcp", *replAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dynfdd:", err)
				os.Exit(1)
			}
			rhsrv := &http.Server{Handler: rsrv.Handler()}
			log.Printf("dynfdd: replication on %s", rln.Addr())
			go func() {
				if err := rhsrv.Serve(rln); err != nil && !errors.Is(err, http.ErrServerClosed) {
					log.Printf("dynfdd: replication server: %v", err)
				}
			}()
			stops = append(stops, func() { rhsrv.Close() })
		}
		// Final per-tenant checkpoints after the HTTP server drained.
		shutdowns = append(shutdowns, rt.Close)
	}

	// Legacy single-dataset line protocol.
	if *listen != "" {
		srv, l, shutdown, err := setup(*listen, *initial, *columns, *dataDir, *batch, workers, *checkpointEvery, *syncMaxDelay, *commitQueue)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynfdd:", err)
			os.Exit(1)
		}
		log.Printf("dynfdd: serving on %s", l.Addr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(l); err != nil {
				failed <- err
			}
		}()
		stops = append(stops, func() { srv.Close() })
		shutdowns = append(shutdowns, shutdown)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("dynfdd: received %v, shutting down", s)
	case err := <-failed:
		fmt.Fprintln(os.Stderr, "dynfdd:", err)
		os.Exit(1)
	}
	// Stop accepting and drain in-flight work, then write final
	// checkpoints and release storage.
	for _, stop := range stops {
		stop()
	}
	wg.Wait()
	for _, shutdown := range shutdowns {
		if err := shutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "dynfdd:", err)
			os.Exit(1)
		}
	}
	log.Printf("dynfdd: shut down cleanly")
}

// promoteNode is the -promote one-shot client: POST /repl/v1/promote on
// the target daemon's public HTTP API and report the promoted epochs. The
// request carries a deadline: in a failover runbook the target may be
// half-dead, and a hung promote is worse than a failed one.
func promoteNode(base string) error {
	url := strings.TrimRight(base, "/") + "/repl/v1/promote"
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	var body struct {
		Role   string            `json:"role"`
		Epochs map[string]uint64 `json:"epochs"`
		Error  string            `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		return fmt.Errorf("promote %s: unexpected response (status %d): %.200s", base, resp.StatusCode, data)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote %s: %s (status %d)", base, body.Error, resp.StatusCode)
	}
	if len(body.Epochs) == 0 {
		fmt.Printf("dynfdd: %s is now %s (no tenants promoted)\n", base, body.Role)
		return nil
	}
	names := make([]string, 0, len(body.Epochs))
	for name := range body.Epochs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("dynfdd: %s is now %s\n", base, body.Role)
	for _, name := range names {
		fmt.Printf("dynfdd: tenant %s promoted to epoch %d\n", name, body.Epochs[name])
	}
	return nil
}

// parseWorkers resolves the -workers flag: "auto" (the default) means one
// scheduler worker per available CPU; any integer passes through with
// dynfd.WithWorkers semantics (0 = serial reference path).
func parseWorkers(s string) (int, error) {
	if s == "auto" {
		return goruntime.GOMAXPROCS(0), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf(`-workers: want an integer or "auto", got %q`, s)
	}
	return n, nil
}

// setup builds the line-protocol server and listener. The returned
// shutdown func must run after Serve returns; with a data directory it
// writes the final checkpoint and closes the store.
func setup(listen, initial, columns, dataDir string, batch, workers, checkpointEvery int, syncMaxDelay time.Duration, commitQueue int) (*server.Server, net.Listener, func() error, error) {
	var (
		cols []string
		rows [][]string
	)
	switch {
	case initial != "":
		rel, err := dataset.ReadCSVFile(initial)
		if err != nil {
			return nil, nil, nil, err
		}
		cols, rows = rel.Columns, rel.Rows
	case columns != "":
		cols = strings.Split(columns, ",")
	case dataDir == "":
		return nil, nil, nil, fmt.Errorf("either -initial, -columns, or -data-dir is required")
	}
	cfg := core.DefaultConfig()
	cfg.Workers = workers

	var (
		srv      *server.Server
		shutdown = func() error { return nil }
	)
	if dataDir != "" {
		st, err := durable.OpenDir(dataDir)
		if err != nil {
			return nil, nil, nil, err
		}
		eng, err := durable.Open(st, durable.Options{
			Columns: cols, Config: cfg, CheckpointEvery: checkpointEvery,
			SyncMaxDelay: syncMaxDelay, CommitQueue: commitQueue,
		})
		if err != nil {
			st.Close()
			return nil, nil, nil, err
		}
		switch {
		case eng.Seq() == 0 && eng.NumRecords() == 0 && len(rows) > 0:
			if err := eng.Bootstrap(rows); err != nil {
				st.Close()
				return nil, nil, nil, err
			}
		case len(rows) > 0:
			log.Printf("dynfdd: %s already holds %d records at seq %d; ignoring -initial rows",
				dataDir, eng.NumRecords(), eng.Seq())
		}
		srv, err = server.NewWithBackend(eng.Columns(), eng, batch)
		if err != nil {
			st.Close()
			return nil, nil, nil, err
		}
		shutdown = eng.Close
	} else {
		var err error
		srv, err = server.New(cols, rows, batch, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		shutdown()
		return nil, nil, nil, err
	}
	return srv, l, shutdown, nil
}
