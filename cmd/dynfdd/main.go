// Command dynfdd runs DynFD as a network service: it maintains the
// functional dependencies of one relation and serves a line-oriented JSON
// protocol over TCP for feeding changes and querying the current FDs.
//
// Usage:
//
//	dynfdd -listen 127.0.0.1:7070 -initial data.csv [-batch 100]
//	dynfdd -listen 127.0.0.1:7070 -columns zip,city
//	dynfdd -listen 127.0.0.1:7070 -columns zip,city -data-dir /var/lib/dynfd
//
// With -data-dir, every committed batch is appended to a write-ahead log
// and fsynced before the commit is acknowledged, and the directory is
// checkpointed every -checkpoint-every batches; restarting the daemon on
// the same directory resumes with the exact FDs of the last acknowledged
// commit, even after a crash or kill -9. On SIGINT/SIGTERM the daemon
// stops accepting, drains in-flight commits, writes a final checkpoint,
// and exits 0.
//
// Protocol (one JSON object per line; see internal/server):
//
//	{"op":"insert","values":["14482","Potsdam"]}
//	{"op":"delete","id":3}
//	{"op":"update","id":4,"values":["14482","Berlin"]}
//	{"op":"commit"}   -> {"ok":true,"inserted_ids":[5],"added":[...],"removed":[...]}
//	{"op":"fds"}      -> {"ok":true,"fds":["[zip] -> city", ...]}
//	{"op":"stats"}    -> {"ok":true,"records":42,"batches":7}
//
// Try it interactively:
//
//	printf '{"op":"fds"}\n' | nc 127.0.0.1 7070
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dynfd/internal/core"
	"dynfd/internal/dataset"
	"dynfd/internal/durable"
	"dynfd/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address")
	initial := flag.String("initial", "", "CSV file with the initial relation (header = schema)")
	columns := flag.String("columns", "", "comma-separated schema when no -initial file is given")
	batch := flag.Int("batch", 100, "auto-commit batch size")
	workers := flag.Int("workers", 0, "parallel validations per lattice level (0 = serial, -1 = all CPUs)")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log and checkpoints (empty = in-memory only)")
	checkpointEvery := flag.Int("checkpoint-every", durable.DefaultCheckpointEvery, "batches between checkpoints with -data-dir (negative disables)")
	flag.Parse()

	srv, l, shutdown, err := setup(*listen, *initial, *columns, *dataDir, *batch, *workers, *checkpointEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynfdd:", err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("dynfdd: received %v, shutting down", s)
		// Close stops accepting, closes connections, and waits for every
		// in-flight handler — so no commit is cut off mid-apply.
		srv.Close()
	}()

	log.Printf("dynfdd: serving on %s", l.Addr())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "dynfdd:", err)
		os.Exit(1)
	}
	// Final checkpoint + storage release (no-op without -data-dir).
	if err := shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "dynfdd:", err)
		os.Exit(1)
	}
	log.Printf("dynfdd: shut down cleanly")
}

// setup builds the server and listener. The returned shutdown func must
// run after Serve returns; with a data directory it writes the final
// checkpoint and closes the store.
func setup(listen, initial, columns, dataDir string, batch, workers, checkpointEvery int) (*server.Server, net.Listener, func() error, error) {
	var (
		cols []string
		rows [][]string
	)
	switch {
	case initial != "":
		rel, err := dataset.ReadCSVFile(initial)
		if err != nil {
			return nil, nil, nil, err
		}
		cols, rows = rel.Columns, rel.Rows
	case columns != "":
		cols = strings.Split(columns, ",")
	case dataDir == "":
		return nil, nil, nil, fmt.Errorf("either -initial, -columns, or -data-dir is required")
	}
	cfg := core.DefaultConfig()
	cfg.Workers = workers

	var (
		srv      *server.Server
		shutdown = func() error { return nil }
	)
	if dataDir != "" {
		st, err := durable.OpenDir(dataDir)
		if err != nil {
			return nil, nil, nil, err
		}
		eng, err := durable.Open(st, durable.Options{Columns: cols, Config: cfg, CheckpointEvery: checkpointEvery})
		if err != nil {
			st.Close()
			return nil, nil, nil, err
		}
		switch {
		case eng.Seq() == 0 && eng.NumRecords() == 0 && len(rows) > 0:
			if err := eng.Bootstrap(rows); err != nil {
				st.Close()
				return nil, nil, nil, err
			}
		case len(rows) > 0:
			log.Printf("dynfdd: %s already holds %d records at seq %d; ignoring -initial rows",
				dataDir, eng.NumRecords(), eng.Seq())
		}
		srv, err = server.NewWithBackend(eng.Columns(), eng, batch)
		if err != nil {
			st.Close()
			return nil, nil, nil, err
		}
		shutdown = eng.Close
	} else {
		var err error
		srv, err = server.New(cols, rows, batch, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		shutdown()
		return nil, nil, nil, err
	}
	return srv, l, shutdown, nil
}
