// Command dynfdd runs DynFD as a network service: it maintains the
// functional dependencies of one relation and serves a line-oriented JSON
// protocol over TCP for feeding changes and querying the current FDs.
//
// Usage:
//
//	dynfdd -listen 127.0.0.1:7070 -initial data.csv [-batch 100]
//	dynfdd -listen 127.0.0.1:7070 -columns zip,city
//
// Protocol (one JSON object per line; see internal/server):
//
//	{"op":"insert","values":["14482","Potsdam"]}
//	{"op":"delete","id":3}
//	{"op":"update","id":4,"values":["14482","Berlin"]}
//	{"op":"commit"}   -> {"ok":true,"inserted_ids":[5],"added":[...],"removed":[...]}
//	{"op":"fds"}      -> {"ok":true,"fds":["[zip] -> city", ...]}
//	{"op":"stats"}    -> {"ok":true,"records":42,"batches":7}
//
// Try it interactively:
//
//	printf '{"op":"fds"}\n' | nc 127.0.0.1 7070
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"dynfd/internal/core"
	"dynfd/internal/dataset"
	"dynfd/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address")
	initial := flag.String("initial", "", "CSV file with the initial relation (header = schema)")
	columns := flag.String("columns", "", "comma-separated schema when no -initial file is given")
	batch := flag.Int("batch", 100, "auto-commit batch size")
	workers := flag.Int("workers", 0, "parallel validations per lattice level (0 = serial, -1 = all CPUs)")
	flag.Parse()

	srv, l, err := setup(*listen, *initial, *columns, *batch, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynfdd:", err)
		os.Exit(1)
	}
	log.Printf("dynfdd: serving on %s", l.Addr())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "dynfdd:", err)
		os.Exit(1)
	}
}

func setup(listen, initial, columns string, batch, workers int) (*server.Server, net.Listener, error) {
	var (
		cols []string
		rows [][]string
	)
	switch {
	case initial != "":
		rel, err := dataset.ReadCSVFile(initial)
		if err != nil {
			return nil, nil, err
		}
		cols, rows = rel.Columns, rel.Rows
	case columns != "":
		cols = strings.Split(columns, ",")
	default:
		return nil, nil, fmt.Errorf("either -initial or -columns is required")
	}
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	srv, err := server.New(cols, rows, batch, cfg)
	if err != nil {
		return nil, nil, err
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, nil, err
	}
	return srv, l, nil
}
