package main

import (
	"bufio"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// replDaemon is a dynfdd subprocess running as a replication primary: the
// HTTP API plus the -repl-addr endpoint.
type replDaemon struct {
	*httpDaemon
	replBase string // http://host:port of the replication listener
}

// startReplPrimary launches bin with -repl-addr and parses both listen
// addresses from the startup log.
func startReplPrimary(t *testing.T, bin string, args ...string) *replDaemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	httpCh := make(chan string, 1)
	replCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			for marker, ch := range map[string]chan string{"http on ": httpCh, "replication on ": replCh} {
				if i := strings.Index(line, marker); i >= 0 {
					addr := line[i+len(marker):]
					if j := strings.Index(addr, " "); j >= 0 {
						addr = addr[:j]
					}
					select {
					case ch <- addr:
					default:
					}
				}
			}
		}
	}()
	d := &replDaemon{httpDaemon: &httpDaemon{cmd: cmd}}
	for _, w := range []struct {
		ch   chan string
		dst  *string
		what string
	}{
		{httpCh, &d.base, "HTTP"},
		{replCh, &d.replBase, "replication"},
	} {
		select {
		case addr := <-w.ch:
			*w.dst = "http://" + addr
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("daemon never reported its %s address", w.what)
		}
	}
	return d
}

// fdsPayload extracts the "fds" array of a read response, dropping the
// per-node staleness fields so primary and follower payloads compare.
func fdsPayload(t *testing.T, data []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("bad fds body %s: %v", data, err)
	}
	out, err := json.Marshal(m["fds"])
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// waitReplica polls the follower daemon until tenant t0 reports seq want,
// returning the fds payload observed there.
func waitReplica(t *testing.T, d *httpDaemon, want uint64) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code, data := d.do(t, "GET", "/v1/tenants/t0", ""); code == 200 {
			var st tenantState
			if err := json.Unmarshal(data, &st); err == nil && st.Seq == want {
				code, fds := d.do(t, "GET", "/v1/tenants/t0/fds", "")
				if code != 200 {
					t.Fatalf("follower fds = %d %s", code, fds)
				}
				return fdsPayload(t, fds)
			}
		}
		if time.Now().After(deadline) {
			code, data := d.do(t, "GET", "/v1/tenants/t0", "")
			t.Fatalf("follower never reached seq %d; last: %d %s", want, code, data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceReplication drives the full deployment story with real
// processes: a primary with -repl-addr, a follower with -replicate-from
// that mirrors the tenant and serves identical FDs, a kill -9 of the
// follower mid-stream, and a restart over the same data root that resumes
// replication instead of starting over. Both daemons must shut down
// cleanly on SIGTERM.
func TestServiceReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "dynfdd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build dynfdd: %v\n%s", err, out)
	}

	primary := startReplPrimary(t, bin,
		"-http", "127.0.0.1:0", "-data-root", filepath.Join(t.TempDir(), "primary"),
		"-repl-addr", "127.0.0.1:0")
	defer func() {
		primary.cmd.Process.Kill()
		primary.cmd.Wait()
	}()

	if code, data := primary.do(t, "POST", "/v1/tenants",
		`{"name":"t0","columns":["zip","city"],"rows":[["14482","Potsdam"],["10115","Berlin"]]}`); code != 201 {
		t.Fatalf("create t0 = %d %s", code, data)
	}
	batches := []string{
		`{"changes":[{"op":"insert","values":["14482","Golm"]},{"op":"insert","values":["60311","Frankfurt"]}]}`,
		`{"changes":[{"op":"update","id":0,"values":["14482","Babelsberg"]}]}`,
		`{"changes":[{"op":"delete","id":1}]}`,
	}
	for i, b := range batches {
		if code, data := primary.do(t, "POST", "/v1/tenants/t0/batch", b); code != 200 {
			t.Fatalf("batch %d = %d %s", i, code, data)
		}
	}
	pState := primary.state(t, "t0")

	followerRoot := filepath.Join(t.TempDir(), "follower")
	follower := startHTTPDaemon(t, bin,
		"-http", "127.0.0.1:0", "-data-root", followerRoot,
		"-replicate-from", primary.replBase)
	defer func() {
		follower.cmd.Process.Kill()
		follower.cmd.Wait()
	}()

	fFDs := waitReplica(t, follower, pState.Seq)
	if pFDs := fdsPayload(t, []byte(pState.FDs)); fFDs != pFDs {
		t.Fatalf("fds diverge:\nprimary  %s\nfollower %s", pFDs, fFDs)
	}
	fState := follower.state(t, "t0")
	if fState.Records != pState.Records {
		t.Fatalf("follower records %d, primary %d", fState.Records, pState.Records)
	}

	// Writes must be refused at the follower.
	if code, data := follower.do(t, "POST", "/v1/tenants/t0/batch", batches[0]); code != 403 {
		t.Fatalf("follower write = %d %s, want 403", code, data)
	}

	// kill -9 the follower mid-deployment; the primary keeps committing.
	if err := follower.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	follower.cmd.Wait()
	postKill := []string{
		`{"changes":[{"op":"insert","values":["50667","Cologne"]},{"op":"insert","values":["50667","Deutz"]}]}`,
		`{"changes":[{"op":"insert","values":["80331","Munich"]}]}`,
	}
	for i, b := range postKill {
		if code, data := primary.do(t, "POST", "/v1/tenants/t0/batch", b); code != 200 {
			t.Fatalf("post-kill batch %d = %d %s", i, code, data)
		}
	}
	pState = primary.state(t, "t0")

	// Restart over the same data root: replication resumes from the
	// recovered sequence and converges on the new primary state.
	follower2 := startHTTPDaemon(t, bin,
		"-http", "127.0.0.1:0", "-data-root", followerRoot,
		"-replicate-from", primary.replBase)
	defer func() {
		follower2.cmd.Process.Kill()
		follower2.cmd.Wait()
	}()
	fFDs = waitReplica(t, follower2, pState.Seq)
	if pFDs := fdsPayload(t, []byte(pState.FDs)); fFDs != pFDs {
		t.Fatalf("fds diverge after follower restart:\nprimary  %s\nfollower %s", pFDs, fFDs)
	}

	// Both roles shut down cleanly.
	for _, d := range []*httpDaemon{follower2, primary.httpDaemon} {
		if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- d.cmd.Wait() }()
		select {
		case err := <-exited:
			if err != nil {
				t.Fatalf("SIGTERM exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			d.cmd.Process.Kill()
			t.Fatal("daemon did not exit on SIGTERM")
		}
	}
}
