package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// httpDaemon is one dynfdd subprocess serving the multi-tenant HTTP API.
type httpDaemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startHTTPDaemon launches bin in -http mode and parses the listen address
// from its startup log line.
func startHTTPDaemon(t *testing.T, bin string, args ...string) *httpDaemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "http on "); i >= 0 {
				addr := line[i+len("http on "):]
				if j := strings.Index(addr, " "); j >= 0 {
					addr = addr[:j]
				}
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &httpDaemon{cmd: cmd, base: "http://" + addr}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon never reported its HTTP address")
		return nil
	}
}

func (d *httpDaemon) do(t *testing.T, method, path, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, d.base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// tenantState captures what a restart must preserve for one tenant.
type tenantState struct {
	Seq     uint64 `json:"seq"`
	Records int    `json:"records"`
	FDs     string // sorted rendered cover
}

func (d *httpDaemon) state(t *testing.T, tenant string) tenantState {
	t.Helper()
	code, data := d.do(t, "GET", "/v1/tenants/"+tenant, "")
	if code != 200 {
		t.Fatalf("info %s = %d %s", tenant, code, data)
	}
	var st tenantState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	code, data = d.do(t, "GET", "/v1/tenants/"+tenant+"/fds", "")
	if code != 200 {
		t.Fatalf("fds %s = %d %s", tenant, code, data)
	}
	st.FDs = string(data)
	return st
}

// TestServiceKillAndRestart proves the multi-tenant service loses nothing
// a client was told was durable: a real dynfdd process hosts three
// tenants, acknowledges batches for each, and is SIGKILLed with
// checkpointing disabled so the per-tenant WALs are the only truth. A
// restart on the same -data-root must recover every tenant independently
// with identical seq, record count, and FD cover. A final SIGTERM must
// exit 0 after draining.
func TestServiceKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "dynfdd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build dynfdd: %v\n%s", err, out)
	}
	dataRoot := filepath.Join(t.TempDir(), "root")

	d := startHTTPDaemon(t, bin,
		"-http", "127.0.0.1:0", "-data-root", dataRoot, "-checkpoint-every", "-1")

	tenants := map[string][]string{
		"alpha": {"zip", "city"},
		"beta":  {"sku", "price", "vendor"},
		"gamma": {"a", "b"},
	}
	for name, cols := range tenants {
		body, _ := json.Marshal(map[string]any{"name": name, "columns": cols})
		if code, data := d.do(t, "POST", "/v1/tenants", string(body)); code != 201 {
			t.Fatalf("create %s = %d %s", name, code, data)
		}
	}
	batches := map[string][]string{
		"alpha": {
			`{"changes":[{"op":"insert","values":["14482","Potsdam"]},{"op":"insert","values":["14482","Golm"]}]}`,
			`{"changes":[{"op":"insert","values":["10115","Berlin"]}]}`,
		},
		"beta": {
			`{"changes":[{"op":"insert","values":["s1","9.99","acme"]},{"op":"insert","values":["s2","9.99","acme"]}]}`,
			`{"changes":[{"op":"update","id":0,"values":["s1","12.50","acme"]}]}`,
			`{"changes":[{"op":"insert","values":["s3","1.00","globex"]}]}`,
		},
		"gamma": {
			`{"changes":[{"op":"insert","values":["1","x"]},{"op":"insert","values":["2","x"]},{"op":"insert","values":["1","x"]}]}`,
			`{"changes":[{"op":"delete","id":2}]}`,
		},
	}
	for name, bs := range batches {
		for i, b := range bs {
			if code, data := d.do(t, "POST", "/v1/tenants/"+name+"/batch", b); code != 200 {
				t.Fatalf("batch %s[%d] = %d %s", name, i, code, data)
			}
		}
	}
	before := map[string]tenantState{}
	for name, bs := range batches {
		st := d.state(t, name)
		if st.Seq != uint64(len(bs)) {
			t.Fatalf("tenant %s pre-kill seq = %d, want %d", name, st.Seq, len(bs))
		}
		before[name] = st
	}

	// kill -9: no handlers, no final checkpoints. Every acknowledged batch
	// must survive in the per-tenant WALs.
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()

	d2 := startHTTPDaemon(t, bin, "-http", "127.0.0.1:0", "-data-root", dataRoot)
	code, data := d2.do(t, "GET", "/v1/tenants", "")
	if code != 200 {
		t.Fatalf("list after restart = %d %s", code, data)
	}
	if strings.Contains(string(data), "quarantined") {
		t.Fatalf("tenant quarantined after clean WAL recovery: %s", data)
	}
	for name := range tenants {
		after := d2.state(t, name)
		if after != before[name] {
			t.Errorf("tenant %s lost state across kill -9:\n before %+v\n after  %+v", name, before[name], after)
		}
	}
	// The recovered service accepts new writes.
	if code, data := d2.do(t, "POST", "/v1/tenants/alpha/batch",
		`{"changes":[{"op":"insert","values":["60311","Frankfurt"]}]}`); code != 200 {
		t.Fatalf("post-recovery batch = %d %s", code, data)
	}

	// Graceful shutdown: SIGTERM drains, checkpoints every tenant, exits 0.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- d2.cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		d2.cmd.Process.Kill()
		t.Fatal("daemon did not exit on SIGTERM")
	}

	// Third start resumes from the checkpoints, including the post-recovery
	// batch.
	d3 := startHTTPDaemon(t, bin, "-http", "127.0.0.1:0", "-data-root", dataRoot)
	defer func() {
		d3.cmd.Process.Kill()
		d3.cmd.Wait()
	}()
	st := d3.state(t, "alpha")
	if st.Records != 4 || st.Seq != 3 {
		t.Fatalf("alpha after graceful restart = %+v, want 4 records at seq 3", st)
	}
}

// TestServiceDualMode runs both the HTTP API and the legacy line protocol
// in one process and checks each answers.
func TestServiceDualMode(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "dynfdd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build dynfdd: %v\n%s", err, out)
	}
	dir := t.TempDir()

	cmd := exec.Command(bin,
		"-http", "127.0.0.1:0", "-data-root", filepath.Join(dir, "root"),
		"-listen", "127.0.0.1:0", "-columns", "zip,city")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	httpCh := make(chan string, 1)
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "http on "); i >= 0 {
				addr := line[i+len("http on "):]
				if j := strings.Index(addr, " "); j >= 0 {
					addr = addr[:j]
				}
				select {
				case httpCh <- addr:
				default:
				}
			}
			if i := strings.Index(line, "serving on "); i >= 0 {
				select {
				case lineCh <- line[i+len("serving on "):]:
				default:
				}
			}
		}
	}()
	var httpAddr, lineAddr string
	for i := 0; i < 2; i++ {
		select {
		case httpAddr = <-httpCh:
		case lineAddr = <-lineCh:
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon did not report both addresses (http=%q line=%q)", httpAddr, lineAddr)
		}
	}

	resp, err := http.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	d := &daemon{cmd: cmd, addr: lineAddr}
	resps := d.roundTrip(t, `{"op":"insert","values":["14482","Potsdam"]}`, `{"op":"commit"}`)
	if !resps[0].OK {
		t.Fatalf("line-protocol commit alongside HTTP failed: %+v", resps[0])
	}
}
