package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestSetupAndRoundTrip(t *testing.T) {
	t.Parallel()
	csv := filepath.Join(t.TempDir(), "d.csv")
	if err := os.WriteFile(csv, []byte("zip,city\n14482,Potsdam\n10115,Berlin\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, l, shutdown, err := setup("127.0.0.1:0", csv, "", "", 10, 2, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	defer func() { srv.Close(); <-done; shutdown() }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"fds"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "[zip] -> city") {
		t.Errorf("fds response = %s", line)
	}
}

func TestSetupErrors(t *testing.T) {
	t.Parallel()
	if _, _, _, err := setup("127.0.0.1:0", "", "", "", 10, 0, 0, 0, 0); err == nil {
		t.Error("missing schema accepted")
	}
	if _, _, _, err := setup("127.0.0.1:0", "/nonexistent.csv", "", "", 10, 0, 0, 0, 0); err == nil {
		t.Error("missing CSV accepted")
	}
	if _, _, _, err := setup("127.0.0.1:0", "", "a,b", "", 0, 0, 0, 0, 0); err == nil {
		t.Error("batch size 0 accepted")
	}
	if _, _, _, err := setup("notanaddress", "", "a,b", "", 10, 0, 0, 0, 0); err == nil {
		t.Error("bad listen address accepted")
	}
}

// TestSetupDurableResume covers the in-process durable path: a daemon
// setup with -data-dir, batches committed over the wire, the server
// abandoned without shutdown (kill -9 equivalent), and a second setup on
// the same directory resuming with identical FDs — including that the
// -initial rows are only bootstrapped the first time.
func TestSetupDurableResume(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	csv := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(csv, []byte("zip,city\n14482,Potsdam\n10115,Berlin\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(dir, "state")

	srv, l, _, err := setup("127.0.0.1:0", csv, "", dataDir, 10, 0, -1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(conn)
	fmt.Fprintln(conn, `{"op":"insert","values":["14467","Potsdam"]}`)
	fmt.Fprintln(conn, `{"op":"commit"}`)
	if line, err := rd.ReadString('\n'); err != nil || !strings.Contains(line, `"ok":true`) {
		t.Fatalf("commit: %q %v", line, err)
	}
	fmt.Fprintln(conn, `{"op":"fds"}`)
	fdsBefore, err := rd.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	srv.Close()
	<-done
	// No shutdown(): the daemon "died" without its final checkpoint.

	srv2, l2, shutdown2, err := setup("127.0.0.1:0", csv, "", dataDir, 10, 0, -1, 0, 0)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	done2 := make(chan struct{})
	go func() { defer close(done2); _ = srv2.Serve(l2) }()
	defer func() { srv2.Close(); <-done2; shutdown2() }()
	conn2, err := net.Dial("tcp", l2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	rd2 := bufio.NewReader(conn2)
	fmt.Fprintln(conn2, `{"op":"fds"}`)
	fdsAfter, err := rd2.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if fdsAfter != fdsBefore {
		t.Fatalf("FDs diverged across restart:\n before %s after  %s", fdsBefore, fdsAfter)
	}
	fmt.Fprintln(conn2, `{"op":"stats"}`)
	stats, err := rd2.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, `"records":3`) {
		t.Fatalf("stats after resume = %s", stats)
	}
}

// daemon is one dynfdd subprocess under test.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches bin and parses the listen address from its log.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving on "); i >= 0 {
				select {
				case addrCh <- line[i+len("serving on "):]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, addr: addr}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon never reported its listen address")
		return nil
	}
}

type wireResp struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error"`
	FDs     []string `json:"fds"`
	Records *int     `json:"records"`
}

func (d *daemon) roundTrip(t *testing.T, lines ...string) []wireResp {
	t.Helper()
	conn, err := net.Dial("tcp", d.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	var out []wireResp
	for _, line := range lines {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(line, `"commit"`) || strings.Contains(line, `"fds"`) || strings.Contains(line, `"stats"`) {
			raw, err := rd.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			var r wireResp
			if err := json.Unmarshal([]byte(raw), &r); err != nil {
				t.Fatalf("bad response %q: %v", raw, err)
			}
			out = append(out, r)
		}
	}
	return out
}

// TestDaemonKillAndRestart is the end-to-end durability check: a real
// dynfdd process is SIGKILLed right after acknowledging commits, and a
// restart on the same -data-dir must come back with zero lost batches.
// It then exercises graceful shutdown: SIGTERM exits 0 after a final
// checkpoint, and a third start resumes from the checkpoint alone.
func TestDaemonKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "dynfdd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build dynfdd: %v\n%s", err, out)
	}
	dataDir := filepath.Join(t.TempDir(), "state")

	d := startDaemon(t, bin, "-listen", "127.0.0.1:0", "-columns", "zip,city", "-data-dir", dataDir, "-checkpoint-every", "-1")
	resps := d.roundTrip(t,
		`{"op":"insert","values":["14482","Potsdam"]}`,
		`{"op":"insert","values":["14482","Golm"]}`,
		`{"op":"commit"}`,
		`{"op":"insert","values":["10115","Berlin"]}`,
		`{"op":"commit"}`,
		`{"op":"fds"}`,
		`{"op":"stats"}`,
	)
	for i, r := range resps[:2] {
		if !r.OK {
			t.Fatalf("commit %d not acked: %+v", i, r)
		}
	}
	wantFDs := fmt.Sprint(resps[2].FDs)
	if resps[3].Records == nil || *resps[3].Records != 3 {
		t.Fatalf("pre-kill stats = %+v", resps[3])
	}

	// kill -9: no handlers run, no final checkpoint — the WAL is all.
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()

	d2 := startDaemon(t, bin, "-listen", "127.0.0.1:0", "-data-dir", dataDir)
	resps2 := d2.roundTrip(t, `{"op":"fds"}`, `{"op":"stats"}`)
	if got := fmt.Sprint(resps2[0].FDs); got != wantFDs {
		t.Fatalf("FDs lost across kill -9:\n got %s\nwant %s", got, wantFDs)
	}
	if resps2[1].Records == nil || *resps2[1].Records != 3 {
		t.Fatalf("records lost across kill -9: %+v", resps2[1])
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- d2.cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		d2.cmd.Process.Kill()
		t.Fatal("daemon did not exit on SIGTERM")
	}

	// After the graceful exit the state lives in the final checkpoint;
	// a third start must resume identically.
	d3 := startDaemon(t, bin, "-listen", "127.0.0.1:0", "-data-dir", dataDir)
	defer func() {
		d3.cmd.Process.Kill()
		d3.cmd.Wait()
	}()
	resps3 := d3.roundTrip(t, `{"op":"fds"}`)
	if got := fmt.Sprint(resps3[0].FDs); got != wantFDs {
		t.Fatalf("FDs lost across graceful restart:\n got %s\nwant %s", got, wantFDs)
	}
}
