package main

import (
	"bufio"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSetupAndRoundTrip(t *testing.T) {
	t.Parallel()
	csv := filepath.Join(t.TempDir(), "d.csv")
	if err := os.WriteFile(csv, []byte("zip,city\n14482,Potsdam\n10115,Berlin\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, l, err := setup("127.0.0.1:0", csv, "", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	defer func() { srv.Close(); <-done }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"fds"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "[zip] -> city") {
		t.Errorf("fds response = %s", line)
	}
}

func TestSetupErrors(t *testing.T) {
	t.Parallel()
	if _, _, err := setup("127.0.0.1:0", "", "", 10, 0); err == nil {
		t.Error("missing schema accepted")
	}
	if _, _, err := setup("127.0.0.1:0", "/nonexistent.csv", "", 10, 0); err == nil {
		t.Error("missing CSV accepted")
	}
	if _, _, err := setup("127.0.0.1:0", "", "a,b", 0, 0); err == nil {
		t.Error("batch size 0 accepted")
	}
	if _, _, err := setup("notanaddress", "", "a,b", 10, 0); err == nil {
		t.Error("bad listen address accepted")
	}
}
