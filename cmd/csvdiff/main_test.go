package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunKeyed(t *testing.T) {
	t.Parallel()
	v1 := write(t, "v1.csv", "id,city\n1,Potsdam\n2,Berlin\n")
	v2 := write(t, "v2.csv", "id,city\n1,Leipzig\n3,Bremen\n")
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run([]string{v1, v2}, []string{"id"}, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{`"op":"update"`, `"op":"insert"`, `"op":"delete"`} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %s:\n%s", want, got)
		}
	}
}

func TestRunMultiset(t *testing.T) {
	t.Parallel()
	v1 := write(t, "v1.csv", "a\nx\nx\n")
	v2 := write(t, "v2.csv", "a\nx\ny\n")
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run([]string{v1, v2}, nil, out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out.Name())
	if !strings.Contains(string(data), `"op":"delete"`) || !strings.Contains(string(data), `"op":"insert"`) {
		t.Errorf("output = %s", data)
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	v1 := write(t, "v1.csv", "id,city\n1,Potsdam\n")
	if err := run([]string{"/nonexistent.csv", v1}, nil, os.Stdout); err == nil {
		t.Error("missing first version accepted")
	}
	if err := run([]string{v1, "/nonexistent.csv"}, nil, os.Stdout); err == nil {
		t.Error("missing second version accepted")
	}
	if err := run([]string{v1, v1}, []string{"nope"}, os.Stdout); err == nil {
		t.Error("unknown key column accepted")
	}
	other := write(t, "other.csv", "x\n1\n")
	if err := run([]string{v1, other}, nil, os.Stdout); err == nil {
		t.Error("schema mismatch accepted")
	}
}
