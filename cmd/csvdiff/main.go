// Command csvdiff extracts a change history from a series of CSV snapshots
// of the same relation — the preprocessing the DynFD paper applies to its
// dataset dump series (§6.1). The output is the JSON-lines change format
// consumed by the dynfd command.
//
// Usage:
//
//	csvdiff [-key col1,col2] v1.csv v2.csv [v3.csv ...] > changes.jsonl
//
// With -key, logical rows are matched across versions by the named columns
// (which must be unique per version) and value changes become updates.
// Without -key, versions are diffed as row multisets, producing only
// inserts and deletes.
//
// Record ids in the output follow the dynfd engine's assignment: the first
// version's rows get ids 0..n-1 in file order, and every insert or update
// allocates the next id — so the stream replays directly against a monitor
// bootstrapped with the first version.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynfd/internal/dataset"
	"dynfd/internal/extract"
	"dynfd/internal/stream"
)

func main() {
	key := flag.String("key", "", "comma-separated key columns for update detection")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: csvdiff [-key cols] v1.csv v2.csv [v3.csv ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}
	var keyCols []string
	if *key != "" {
		keyCols = strings.Split(*key, ",")
	}
	if err := run(flag.Args(), keyCols, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "csvdiff:", err)
		os.Exit(1)
	}
}

func run(paths []string, keyCols []string, out *os.File) error {
	initial, err := dataset.ReadCSVFile(paths[0])
	if err != nil {
		return err
	}
	x, err := extract.New(initial, keyCols)
	if err != nil {
		return err
	}
	for _, path := range paths[1:] {
		next, err := dataset.ReadCSVFile(path)
		if err != nil {
			return err
		}
		changes, err := x.Diff(next)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := stream.WriteChanges(out, changes); err != nil {
			return err
		}
	}
	return nil
}
