// Command fddiscover runs a static functional dependency discovery over a
// CSV file and prints all minimal, non-trivial FDs.
//
// Usage:
//
//	fddiscover [-algo hyfd|tane|fdep] [-counts] file.csv
//
// The first CSV record is the header. With -counts only the FD count is
// printed. The three algorithms produce identical results; they differ in
// runtime characteristics (see the package documentation of dynfd).
package main

import (
	"flag"
	"fmt"
	"os"

	"dynfd"
	"dynfd/internal/dataset"
)

func main() {
	algoName := flag.String("algo", "hyfd", "discovery algorithm: hyfd, tane, or fdep")
	counts := flag.Bool("counts", false, "print only the number of minimal FDs")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fddiscover [flags] file.csv\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *algoName, *counts); err != nil {
		fmt.Fprintln(os.Stderr, "fddiscover:", err)
		os.Exit(1)
	}
}

func run(path, algoName string, counts bool) error {
	algo, err := dynfd.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	rel, err := dataset.ReadCSVFile(path)
	if err != nil {
		return err
	}
	fds, err := dynfd.Discover(rel.Columns, rel.Rows, algo)
	if err != nil {
		return err
	}
	if counts {
		fmt.Println(len(fds))
		return nil
	}
	fmt.Printf("# %d minimal FDs in %s (%d columns, %d rows, algorithm %s)\n",
		len(fds), path, rel.NumColumns(), rel.NumRows(), algo)
	for _, f := range fds {
		fmt.Println(format(rel.Columns, f))
	}
	return nil
}

func format(columns []string, f dynfd.FD) string {
	lhs := make([]string, len(f.Lhs))
	for i, a := range f.Lhs {
		lhs[i] = columns[a]
	}
	return fmt.Sprintf("%v -> %s", lhs, columns[f.Rhs])
}
