package main

import (
	"os"
	"path/filepath"
	"testing"

	"dynfd"
)

func TestRunAlgorithms(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "people.csv")
	csv := "zip,city\n14482,Potsdam\n14467,Potsdam\n10115,Berlin\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"hyfd", "tane", "fdep"} {
		if err := run(path, algo, false); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
		if err := run(path, algo, true); err != nil {
			t.Errorf("%s -counts: %v", algo, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if err := run("/nonexistent.csv", "hyfd", false); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "x.csv")
	_ = os.WriteFile(path, []byte("a,b\n1,2\n"), 0o644)
	if err := run(path, "nope", false); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestFormat(t *testing.T) {
	t.Parallel()
	got := format([]string{"zip", "city"}, dynfd.FD{Lhs: []int{0}, Rhs: 1})
	if got != "[zip] -> city" {
		t.Errorf("format = %q", got)
	}
}
