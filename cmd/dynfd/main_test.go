package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const peopleCSV = `firstname,lastname,zip,city
Max,Jones,14482,Potsdam
Max,Miller,14482,Potsdam
Max,Jones,10115,Berlin
Anna,Scott,13591,Berlin
`

const paperChanges = `{"op":"delete","id":2}
{"op":"insert","values":["Marie","Scott","14467","Potsdam"]}
{"op":"insert","values":["Marie","Gray","14469","Potsdam"]}
`

func TestRunWithInitialCSV(t *testing.T) {
	t.Parallel()
	csv := writeFile(t, "people.csv", peopleCSV)
	changes := writeFile(t, "changes.jsonl", paperChanges)
	var out bytes.Buffer
	if err := run(changes, csv, "", 100, 2, false, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"bootstrap: 4 rows, 5 minimal FDs",
		"- [lastname] -> firstname",
		"+ [firstname] -> city",
		"final: 5 rows, 6 minimal FDs",
		"stats:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunQuietMode(t *testing.T) {
	t.Parallel()
	csv := writeFile(t, "people.csv", peopleCSV)
	changes := writeFile(t, "changes.jsonl", paperChanges)
	var out bytes.Buffer
	if err := run(changes, csv, "", 1, 2, true, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "(batch") {
		t.Errorf("quiet mode printed per-batch changes:\n%s", s)
	}
	if !strings.Contains(s, "final: 5 rows, 6 minimal FDs") {
		t.Errorf("final summary missing:\n%s", s)
	}
}

func TestRunColumnsOnly(t *testing.T) {
	t.Parallel()
	changes := writeFile(t, "c.jsonl", `{"op":"insert","values":["a","b"]}`+"\n")
	var out bytes.Buffer
	if err := run(changes, "", "x,y", 10, 0, false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "final: 1 rows") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	changes := writeFile(t, "c.jsonl", "")
	var out bytes.Buffer
	if err := run(changes, "", "", 10, 0, false, &out); err == nil {
		t.Error("missing schema accepted")
	}
	if err := run(changes, "", "a,b", 0, 0, false, &out); err == nil {
		t.Error("batch size 0 accepted")
	}
	if err := run("/nonexistent.jsonl", "", "a,b", 10, 0, false, &out); err == nil {
		t.Error("missing changes file accepted")
	}
	bad := writeFile(t, "bad.jsonl", `{"op":"delete","id":999}`+"\n")
	if err := run(bad, "", "a,b", 10, 0, false, &out); err == nil {
		t.Error("dangling delete accepted")
	}
	badCSV := writeFile(t, "bad.csv", "a,a\n1,2\n")
	if err := run(changes, badCSV, "", 10, 0, false, &out); err == nil {
		t.Error("duplicate-column CSV accepted")
	}
}
