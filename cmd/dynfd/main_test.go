package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const peopleCSV = `firstname,lastname,zip,city
Max,Jones,14482,Potsdam
Max,Miller,14482,Potsdam
Max,Jones,10115,Berlin
Anna,Scott,13591,Berlin
`

const paperChanges = `{"op":"delete","id":2}
{"op":"insert","values":["Marie","Scott","14467","Potsdam"]}
{"op":"insert","values":["Marie","Gray","14469","Potsdam"]}
`

func TestRunWithInitialCSV(t *testing.T) {
	t.Parallel()
	csv := writeFile(t, "people.csv", peopleCSV)
	changes := writeFile(t, "changes.jsonl", paperChanges)
	var out bytes.Buffer
	if err := run(changes, csv, "", 100, 2, false, false, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"bootstrap: 4 rows, 5 minimal FDs",
		"- [lastname] -> firstname",
		"+ [firstname] -> city",
		"final: 5 rows, 6 minimal FDs",
		"stats:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunQuietMode(t *testing.T) {
	t.Parallel()
	csv := writeFile(t, "people.csv", peopleCSV)
	changes := writeFile(t, "changes.jsonl", paperChanges)
	var out bytes.Buffer
	if err := run(changes, csv, "", 1, 2, true, false, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "(batch") {
		t.Errorf("quiet mode printed per-batch changes:\n%s", s)
	}
	if !strings.Contains(s, "final: 5 rows, 6 minimal FDs") {
		t.Errorf("final summary missing:\n%s", s)
	}
}

func TestRunColumnsOnly(t *testing.T) {
	t.Parallel()
	changes := writeFile(t, "c.jsonl", `{"op":"insert","values":["a","b"]}`+"\n")
	var out bytes.Buffer
	if err := run(changes, "", "x,y", 10, 0, false, false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "final: 1 rows") {
		t.Errorf("output: %s", out.String())
	}
}

func TestProfiledWritesProfiles(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	ran := false
	if err := profiled(cpu, mem, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("profiled did not run the wrapped function")
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestProfiledErrors(t *testing.T) {
	t.Parallel()
	// No profile paths: the wrapped error passes through unwrapped.
	wantErr := os.ErrClosed
	if err := profiled("", "", func() error { return wantErr }); err != wantErr {
		t.Errorf("got %v, want %v", err, wantErr)
	}
	// Unwritable profile paths fail up front / after the run.
	bad := filepath.Join(t.TempDir(), "missing-dir", "p.out")
	if err := profiled(bad, "", func() error { return nil }); err == nil {
		t.Error("unwritable cpuprofile path accepted")
	}
	if err := profiled("", bad, func() error { return nil }); err == nil {
		t.Error("unwritable memprofile path accepted")
	}
	// A failing run must not clobber the error with a memprofile write.
	mem := filepath.Join(t.TempDir(), "mem.out")
	if err := profiled("", mem, func() error { return wantErr }); err != wantErr {
		t.Errorf("got %v, want %v", err, wantErr)
	}
	if _, err := os.Stat(mem); err == nil {
		t.Error("memprofile written despite failed run")
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	changes := writeFile(t, "c.jsonl", "")
	var out bytes.Buffer
	if err := run(changes, "", "", 10, 0, false, false, &out); err == nil {
		t.Error("missing schema accepted")
	}
	if err := run(changes, "", "a,b", 0, 0, false, false, &out); err == nil {
		t.Error("batch size 0 accepted")
	}
	if err := run("/nonexistent.jsonl", "", "a,b", 10, 0, false, false, &out); err == nil {
		t.Error("missing changes file accepted")
	}
	bad := writeFile(t, "bad.jsonl", `{"op":"delete","id":999}`+"\n")
	if err := run(bad, "", "a,b", 10, 0, false, false, &out); err == nil {
		t.Error("dangling delete accepted")
	}
	badCSV := writeFile(t, "bad.csv", "a,a\n1,2\n")
	if err := run(changes, badCSV, "", 10, 0, false, false, &out); err == nil {
		t.Error("duplicate-column CSV accepted")
	}
}
