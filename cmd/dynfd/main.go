// Command dynfd maintains the minimal functional dependencies of a CSV
// relation under a change stream, printing every FD change as it happens.
//
// Usage:
//
//	dynfd [-batch n] [-initial data.csv] [-quiet] changes.jsonl
//
// The change stream is a JSON-lines file (use "-" for stdin):
//
//	{"op":"insert","values":["14482","Potsdam"]}
//	{"op":"delete","id":3}
//	{"op":"update","id":4,"values":["14482","Berlin"]}
//
// Record ids: the initial CSV rows receive ids 0..n-1 in file order; every
// insert or update receives the next sequential id. Without -initial the
// relation starts empty and the schema is taken from -columns.
//
// -snapshot prints a constraint report after the replay — single-column
// keys and unary inclusion dependencies — answered from the monitor's
// final immutable result snapshot (Monitor.Snapshot), the same
// copy-on-write read path the dynfdd daemon serves its query endpoints
// from. The daemon's durability-side knobs (-sync-max-delay,
// -commit-queue) do not apply here: the replay monitor is in-memory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dynfd"
	"dynfd/internal/dataset"
	"dynfd/internal/stream"
)

func main() {
	batchSize := flag.Int("batch", 100, "changes per maintenance batch")
	initial := flag.String("initial", "", "CSV file with the initial relation (header = schema)")
	columns := flag.String("columns", "", "comma-separated schema when no -initial file is given")
	quiet := flag.Bool("quiet", false, "suppress per-batch FD changes; print only the final FDs")
	snapReport := flag.Bool("snapshot", false, "after the replay, report single-column keys and unary INDs from the final result snapshot")
	workersFlag := flag.String("workers", "auto", `maintenance parallelism: "auto" = one scheduler worker per CPU, 0 = serial reference, n >= 1 = scheduler with n workers`)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the replay, post-GC) to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dynfd [flags] changes.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynfd:", err)
		os.Exit(2)
	}
	err = profiled(*cpuprofile, *memprofile, func() error {
		return run(flag.Arg(0), *initial, *columns, *batchSize, workers, *quiet, *snapReport, os.Stdout)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynfd:", err)
		os.Exit(1)
	}
}

// parseWorkers resolves the -workers flag: "auto" (the default) means one
// scheduler worker per available CPU; any integer passes through with
// dynfd.WithWorkers semantics (0 = serial reference path).
func parseWorkers(s string) (int, error) {
	if s == "auto" {
		return runtime.GOMAXPROCS(0), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf(`-workers: want an integer or "auto", got %q`, s)
	}
	return n, nil
}

// profiled runs fn under the optional pprof collectors, so hot-path work
// can be profiled against real replays without editing code:
//
//	dynfd -initial data.csv -cpuprofile cpu.out -memprofile mem.out changes.jsonl
//	go tool pprof cpu.out
//
// An empty path disables the respective profile. The heap profile is
// written after fn returns, following a GC, so it reflects live steady-
// state memory rather than transient batch garbage.
func profiled(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

func run(changesPath, initial, columns string, batchSize, workers int, quiet, snapReport bool, out io.Writer) error {
	if batchSize <= 0 {
		return fmt.Errorf("batch size must be positive")
	}
	var (
		cols []string
		rows [][]string
	)
	switch {
	case initial != "":
		rel, err := dataset.ReadCSVFile(initial)
		if err != nil {
			return err
		}
		cols, rows = rel.Columns, rel.Rows
	case columns != "":
		cols = strings.Split(columns, ",")
	default:
		return fmt.Errorf("either -initial or -columns is required")
	}

	mon, err := dynfd.NewMonitor(cols, dynfd.WithWorkers(workers))
	if err != nil {
		return err
	}
	if len(rows) > 0 {
		if err := mon.Bootstrap(rows); err != nil {
			return err
		}
	}
	if !quiet {
		fmt.Fprintf(out, "# bootstrap: %d rows, %d minimal FDs\n", len(rows), len(mon.FDs()))
		for _, f := range mon.FDs() {
			fmt.Fprintf(out, "+ %s\n", mon.FormatFD(f))
		}
	}

	changes, err := readChanges(changesPath)
	if err != nil {
		return err
	}
	for i, b := range stream.FixedBatches(changes, batchSize) {
		diff, err := mon.Apply(toPublicChanges(b.Changes)...)
		if err != nil {
			return fmt.Errorf("batch %d: %w", i, err)
		}
		if quiet {
			continue
		}
		for _, f := range diff.Removed {
			fmt.Fprintf(out, "- %s (batch %d)\n", mon.FormatFD(f), i)
		}
		for _, f := range diff.Added {
			fmt.Fprintf(out, "+ %s (batch %d)\n", mon.FormatFD(f), i)
		}
	}

	fmt.Fprintf(out, "# final: %d rows, %d minimal FDs\n", mon.NumRecords(), len(mon.FDs()))
	if quiet {
		for _, f := range mon.FDs() {
			fmt.Fprintf(out, "+ %s\n", mon.FormatFD(f))
		}
	}
	st := mon.Stats()
	fmt.Fprintf(out, "# stats: %d batches, %d validations (%d skipped), %d comparisons\n",
		st.Batches, st.Validations, st.SkippedValidations, st.Comparisons)
	if snapReport {
		snap := mon.Snapshot()
		fmt.Fprintf(out, "# snapshot %d: %d rows\n", snap.Seq(), snap.NumRecords())
		snapCols := snap.Columns()
		for _, c := range snapCols {
			if u, err := snap.Unique([]string{c}); err == nil && u {
				fmt.Fprintf(out, "key %s\n", c)
			}
		}
		for _, d := range snap.INDs() {
			fmt.Fprintf(out, "ind %s <= %s\n", snapCols[d.Lhs], snapCols[d.Rhs])
		}
	}
	return nil
}

func readChanges(path string) ([]stream.Change, error) {
	if path == "-" {
		return stream.ReadChanges(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return stream.ReadChanges(f)
}

func toPublicChanges(in []stream.Change) []dynfd.Change {
	out := make([]dynfd.Change, len(in))
	for i, c := range in {
		pc := dynfd.Change{ID: c.ID, Values: c.Values, Time: c.Time}
		switch c.Kind {
		case stream.Insert:
			pc.Kind = dynfd.KindInsert
		case stream.Delete:
			pc.Kind = dynfd.KindDelete
		case stream.Update:
			pc.Kind = dynfd.KindUpdate
		}
		out[i] = pc
	}
	return out
}
