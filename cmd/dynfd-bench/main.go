// Command dynfd-bench regenerates the tables and figures of the DynFD
// paper's evaluation (EDBT 2019, §6) on the synthesized datasets.
//
// Usage:
//
//	dynfd-bench -list
//	dynfd-bench -exp table4 [-scale 0.1] [-datasets cpu,single] [-maxbatches 20]
//	dynfd-bench -exp all -scale 0.05
//
// The -scale flag multiplies every dataset's row and change counts; use
// small values for quick runs and 1.0 (the default) for full, paper-sized
// measurements (artist is pre-scaled; see DESIGN.md). Each experiment
// prints a plain-text table matching the corresponding paper artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"dynfd/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	scale := flag.Float64("scale", 1.0, "dataset size multiplier")
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: all six)")
	maxBatches := flag.Int("maxbatches", 0, "cap batches per measurement (0 = experiment default)")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range bench.ExperimentIDs() {
			fmt.Printf("  %-8s %s\n", id, bench.Experiments()[id])
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	names, err := bench.ParseDatasets(*datasets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynfd-bench:", err)
		os.Exit(1)
	}
	opts := bench.Options{Scale: *scale, MaxBatches: *maxBatches, Datasets: names, Out: os.Stdout}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	for _, id := range ids {
		fmt.Printf("\n=== %s: %s ===\n", id, bench.Experiments()[id])
		if err := bench.Run(id, opts); err != nil {
			fmt.Fprintln(os.Stderr, "dynfd-bench:", err)
			os.Exit(1)
		}
	}
}
