// Package dynfd discovers and maintains functional dependencies (FDs) in
// dynamic datasets. It implements DynFD (Schirmer et al., EDBT 2019), the
// first algorithm that keeps the complete and exact set of minimal,
// non-trivial FDs of a relation up to date under a stream of inserts,
// updates, and deletes — typically more than an order of magnitude faster
// than re-running a static discovery algorithm after every batch.
//
// # Quick start
//
//	mon, _ := dynfd.NewMonitor([]string{"zip", "city"})
//	_ = mon.Bootstrap([][]string{
//		{"14482", "Potsdam"},
//		{"10115", "Berlin"},
//	})
//	diff, _ := mon.Apply(dynfd.Insert("14482", "Potsdam"))
//	for _, f := range mon.FDs() {
//		fmt.Println(mon.FormatFD(f)) // e.g. "[zip] -> city"
//	}
//	_ = diff
//
// The package also exposes the static discovery algorithms HyFD, TANE, and
// FDEP through Discover, for one-shot profiling of a snapshot.
package dynfd

import (
	"fmt"
	"time"

	"dynfd/internal/core"
	"dynfd/internal/dataset"
	"dynfd/internal/fd"
	"dynfd/internal/results"
	"dynfd/internal/stream"
)

// FD is a functional dependency Lhs → Rhs over column indexes of the
// monitored schema. An empty Lhs means the Rhs column is constant.
type FD struct {
	Lhs []int
	Rhs int
}

// String renders the FD with column indexes, e.g. "[0 2] -> 4".
func (f FD) String() string { return fmt.Sprintf("%v -> %d", f.Lhs, f.Rhs) }

// ChangeKind enumerates the change operation types of a dynamic relation.
type ChangeKind int

const (
	// KindInsert adds a new tuple.
	KindInsert ChangeKind = iota
	// KindDelete removes the tuple identified by ID.
	KindDelete
	// KindUpdate replaces the tuple identified by ID with Values.
	KindUpdate
)

// Change is one modification of the monitored relation.
type Change struct {
	Kind   ChangeKind
	ID     int64     // target record for KindDelete and KindUpdate
	Values []string  // tuple values for KindInsert and KindUpdate
	Time   time.Time // optional arrival time (informational)
}

// Insert returns an insert change for the given tuple.
func Insert(values ...string) Change { return Change{Kind: KindInsert, Values: values} }

// Delete returns a delete change for the record with the given id.
func Delete(id int64) Change { return Change{Kind: KindDelete, ID: id} }

// Update returns an update change replacing record id with the new tuple.
func Update(id int64, values ...string) Change {
	return Change{Kind: KindUpdate, ID: id, Values: values}
}

// Pruning selects DynFD's pruning strategies (paper §4–§5). All
// strategies affect performance only; results are identical under every
// combination.
type Pruning struct {
	Cluster          bool // skip unchanged Pli clusters during insert validation (§4.2)
	ViolationSearch  bool // progressive record-pair search for violations (§4.3)
	Validation       bool // skip non-FD re-validation while a witness pair lives (§5.2)
	DepthFirstSearch bool // optimistic depth-first generalization search (§5.3)
	// Delta enables the EAIFD-style batch-delta pruning: insert batches
	// skip every FD candidate whose left-hand side cannot agree with an
	// existing record on any inserted tuple, and delete batches repair
	// violation witnesses whose records were superseded by updates
	// instead of re-validating from scratch.
	Delta bool
}

// AllPruning enables every strategy — the paper's default configuration
// plus the delta pruning.
func AllPruning() Pruning {
	return Pruning{Cluster: true, ViolationSearch: true, Validation: true, DepthFirstSearch: true, Delta: true}
}

// Option configures a Monitor.
type Option func(*options)

type options struct {
	pruning         Pruning
	seed            int64
	keyColumns      []string
	updatePruning   bool
	workers         int
	stealChunk      int
	disableStealing bool
	checkpointEvery int
	syncMaxDelay    time.Duration
	commitQueue     int
	feed            ChangeFeed
}

// WithPruning selects the pruning strategies (default: AllPruning).
func WithPruning(p Pruning) Option { return func(o *options) { o.pruning = p } }

// WithSeed fixes the pseudo-random seed of the depth-first-search seed
// sampling, making maintenance runs reproducible (default 0).
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithKeyColumns declares columns that carry a database uniqueness
// constraint. FDs whose left-hand side contains a declared key trivially
// hold and are never re-validated — the constraint-aware pruning the paper
// proposes as future work (§8). Declaring a non-unique column yields
// undefined results.
func WithKeyColumns(columns ...string) Option {
	return func(o *options) { o.keyColumns = append(o.keyColumns, columns...) }
}

// WithUpdateColumnPruning skips re-validation of dependencies whose
// columns were not touched by an update-only batch, exploiting that most
// updates alter only a few attribute values — the update-specific pruning
// the paper proposes as future work (§8).
func WithUpdateColumnPruning() Option {
	return func(o *options) { o.updatePruning = true }
}

// WithWorkers selects how batch maintenance is executed. 0 (the default)
// runs the serial reference path; n >= 1 runs the work-stealing pipelined
// scheduler with n workers (n == 1 keeps all work on the calling
// goroutine), overlapping Pli maintenance, candidate validation, and
// speculative validation of the next lattice level; n < 0 uses one worker
// per available CPU. Worker count affects wall-clock time only: all
// configurations are guaranteed to report identical FDs after every
// batch. The Monitor itself remains single-caller — the parallelism never
// escapes an Apply call.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithStealChunk overrides the number of candidate validations bundled
// into one stealable task under the pipelined scheduler (default 0 =
// automatic sizing from level width and worker count). Smaller chunks
// increase stealing opportunities at the cost of scheduling overhead;
// chunk size never affects results. Ignored when WithWorkers is 0.
func WithStealChunk(n int) Option {
	return func(o *options) { o.stealChunk = n }
}

// WithoutStealing pins every validation chunk to the worker it was
// submitted to, disabling work stealing while keeping the pipelined
// scheduler. Intended for benchmarking the stealing benefit; results are
// identical either way.
func WithoutStealing() Option {
	return func(o *options) { o.disableStealing = true }
}

// WithCheckpointEvery sets how many applied batches a DurableMonitor
// accumulates in its write-ahead log before folding them into a fresh
// checkpoint (default 64; negative disables automatic checkpoints).
// Plain in-memory Monitors ignore this option.
func WithCheckpointEvery(batches int) Option {
	return func(o *options) { o.checkpointEvery = batches }
}

// WithSyncMaxDelay sets how long a DurableMonitor's group-commit leader
// lingers before running the shared fsync, trading a bounded latency
// increase for larger sync groups under concurrent ApplyStaged load
// (default 0: sync immediately). Plain in-memory Monitors ignore it.
func WithSyncMaxDelay(d time.Duration) Option {
	return func(o *options) { o.syncMaxDelay = d }
}

// WithCommitQueue bounds how many staged-but-unsynced batches a
// DurableMonitor admits at once; ApplyStaged beyond the bound fails fast
// with ErrCommitQueueFull before anything is appended (default 0:
// unbounded). Plain in-memory Monitors ignore it.
func WithCommitQueue(n int) Option {
	return func(o *options) { o.commitQueue = n }
}

// WithChangeFeed attaches a replication change feed to a DurableMonitor:
// every committed batch's encoded payload is appended to the feed, and
// the feed's durability watermark advances as batches become
// crash-durable, which is what a WAL-shipping primary streams to its
// followers (internal/repl). Plain in-memory Monitors ignore it.
func WithChangeFeed(feed ChangeFeed) Option {
	return func(o *options) { o.feed = feed }
}

// Diff reports the effects of one applied batch.
type Diff struct {
	// InsertedIDs holds the surrogate id assigned to each insert and
	// update of the batch, in batch order. Use these ids to address the
	// records in later Delete and Update changes.
	InsertedIDs []int64
	// Added and Removed are the minimal-FD changes caused by the batch.
	Added, Removed []FD
}

// Monitor maintains the minimal, non-trivial FDs of a single relation
// under batches of changes. Create one with NewMonitor, optionally seed it
// with initial tuples via Bootstrap, then feed batches through Apply.
// A Monitor is not safe for concurrent use.
type Monitor struct {
	columns   []string
	colIndex  map[string]int
	engine    *core.Engine
	booted    bool
	batchSeen bool

	// Snapshot cache (see Snapshot): the last built result snapshot, the
	// sequence it was stamped with, whether the engine changed since, and
	// the accumulated FD diff that lets the next build reuse untouched
	// lattice levels copy-on-write.
	snap         *results.Snapshot
	snapSeq      uint64
	snapDirty    bool
	dirtyAdded   []fd.FD
	dirtyRemoved []fd.FD
}

// NewMonitor returns a monitor for a relation with the given column names.
func NewMonitor(columns []string, opts ...Option) (*Monitor, error) {
	rel := dataset.New("relation", columns)
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	o := options{pruning: AllPruning()}
	for _, opt := range opts {
		opt(&o)
	}
	m := &Monitor{
		columns:  append([]string(nil), columns...),
		colIndex: make(map[string]int, len(columns)),
	}
	for i, c := range m.columns {
		m.colIndex[c] = i
	}
	cfg, err := coreConfig(o, m.colIndex)
	if err != nil {
		return nil, err
	}
	m.engine = core.NewEmpty(len(columns), cfg)
	return m, nil
}

func coreConfig(o options, colIndex map[string]int) (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.ClusterPruning = o.pruning.Cluster
	cfg.ViolationSearch = o.pruning.ViolationSearch
	cfg.ValidationPruning = o.pruning.Validation
	cfg.DepthFirstSearch = o.pruning.DepthFirstSearch
	cfg.DeltaPruning = o.pruning.Delta
	cfg.Seed = o.seed
	cfg.UpdateColumnPruning = o.updatePruning
	cfg.Workers = o.workers
	cfg.StealChunk = o.stealChunk
	cfg.DisableStealing = o.disableStealing
	for _, c := range o.keyColumns {
		i, ok := colIndex[c]
		if !ok {
			return cfg, fmt.Errorf("dynfd: unknown key column %q", c)
		}
		cfg.KeyColumns = append(cfg.KeyColumns, i)
	}
	return cfg, nil
}

// Columns returns the schema of the monitored relation.
func (m *Monitor) Columns() []string { return append([]string(nil), m.columns...) }

// Bootstrap loads initial tuples and profiles them with the static HyFD
// algorithm, whose data structures the monitor adopts (paper §2). It must
// be called before the first Apply and at most once. The loaded records
// receive the surrogate ids 0..len(rows)-1 in order.
func (m *Monitor) Bootstrap(rows [][]string) error {
	if m.booted || m.batchSeen {
		return fmt.Errorf("dynfd: Bootstrap must be the first operation on a Monitor")
	}
	rel := dataset.New("relation", m.columns)
	for _, row := range rows {
		if err := rel.Append(row); err != nil {
			return err
		}
	}
	engine, err := core.Bootstrap(rel, m.engineConfig())
	if err != nil {
		return err
	}
	m.engine = engine
	m.booted = true
	// The engine was swapped: a cached snapshot belongs to the old store
	// and cannot seed a copy-on-write build.
	m.snap, m.snapDirty = nil, false
	m.dirtyAdded, m.dirtyRemoved = nil, nil
	return nil
}

func (m *Monitor) engineConfig() core.Config {
	// The empty engine was created with the desired config; reuse it.
	return m.engine.Config()
}

// toBatch converts public changes to the internal batch representation.
func toBatch(changes []Change) (stream.Batch, error) {
	b := stream.Batch{Changes: make([]stream.Change, len(changes))}
	for i, c := range changes {
		sc := stream.Change{ID: c.ID, Values: c.Values, Time: c.Time}
		switch c.Kind {
		case KindInsert:
			sc.Kind = stream.Insert
		case KindDelete:
			sc.Kind = stream.Delete
		case KindUpdate:
			sc.Kind = stream.Update
		default:
			return stream.Batch{}, fmt.Errorf("dynfd: change %d: unknown kind %d", i, int(c.Kind))
		}
		b.Changes[i] = sc
	}
	return b, nil
}

// toDiff converts a batch result to the public diff representation.
func toDiff(res core.Result) Diff {
	return Diff{
		InsertedIDs: res.InsertedIDs,
		Added:       toPublic(res.Added),
		Removed:     toPublic(res.Removed),
	}
}

// Apply incorporates one batch of changes and returns the FD diff. The
// batch is processed atomically in DynFD's pipeline order: structural
// updates, then deletes, then inserts.
func (m *Monitor) Apply(changes ...Change) (Diff, error) {
	b, err := toBatch(changes)
	if err != nil {
		return Diff{}, err
	}
	res, err := m.engine.ApplyBatch(b)
	if err != nil {
		return Diff{}, err
	}
	m.batchSeen = true
	m.snapDirty = true
	m.dirtyAdded = append(m.dirtyAdded, res.Added...)
	m.dirtyRemoved = append(m.dirtyRemoved, res.Removed...)
	return toDiff(res), nil
}

// CheckInvariants verifies the monitor's cross-structure invariants — Pli
// consistency, cover minimality, and the duality of the positive and
// negative covers. It is exported for tests and failure-injection suites;
// regular callers never need it.
func (m *Monitor) CheckInvariants() error { return m.engine.CheckInvariants() }

// FDs returns the current minimal, non-trivial FDs in deterministic order.
func (m *Monitor) FDs() []FD { return toPublic(m.engine.FDs()) }

// NonFDs returns the current maximal non-FDs — the most specific attribute
// combinations that do not functionally determine their right-hand side.
func (m *Monitor) NonFDs() []FD { return toPublic(m.engine.NonFDs()) }

// NumRecords returns the current tuple count.
func (m *Monitor) NumRecords() int { return m.engine.NumRecords() }

// Record returns the current values of a live record.
func (m *Monitor) Record(id int64) ([]string, bool) { return m.engine.Record(id) }

// Lookup returns the ids of live records whose values equal the tuple.
func (m *Monitor) Lookup(values []string) ([]int64, error) { return m.engine.Lookup(values) }

// ForEachRecord visits every live record in unspecified order, passing its
// surrogate id and current values. Returning false from f stops the scan.
func (m *Monitor) ForEachRecord(f func(id int64, values []string) bool) {
	m.engine.ForEachRecord(f)
}

// Holds reports whether the FD lhsColumns → rhsColumn currently holds,
// i.e. whether it is implied by some maintained minimal FD. Column names
// must exist in the schema.
func (m *Monitor) Holds(lhsColumns []string, rhsColumn string) (bool, error) {
	rhs, ok := m.colIndex[rhsColumn]
	if !ok {
		return false, fmt.Errorf("dynfd: unknown column %q", rhsColumn)
	}
	var lhs []int
	for _, c := range lhsColumns {
		i, ok := m.colIndex[c]
		if !ok {
			return false, fmt.Errorf("dynfd: unknown column %q", c)
		}
		lhs = append(lhs, i)
	}
	return m.engine.Holds(lhs, rhs), nil
}

// ViolationGroup is a set of records that agree on an inspected FD's
// left-hand side but disagree on its right-hand side.
type ViolationGroup struct {
	// IDs are the group's record ids, ascending.
	IDs []int64
	// RhsValues is the number of distinct right-hand-side values.
	RhsValues int
}

// Violations explains why an FD does not hold: it returns up to max groups
// of records that agree on the lhs columns but differ on the rhs column
// (max <= 0 returns all groups), together with the FD's g3 error — the
// minimum fraction of records whose removal would make it hold (the
// classic approximate-FD measure of Huhtala et al.). A currently valid FD
// yields no groups and an error of 0.
func (m *Monitor) Violations(lhsColumns []string, rhsColumn string, max int) ([]ViolationGroup, float64, error) {
	rhs, ok := m.colIndex[rhsColumn]
	if !ok {
		return nil, 0, fmt.Errorf("dynfd: unknown column %q", rhsColumn)
	}
	var lhs []int
	for _, c := range lhsColumns {
		i, ok := m.colIndex[c]
		if !ok {
			return nil, 0, fmt.Errorf("dynfd: unknown column %q", c)
		}
		lhs = append(lhs, i)
	}
	groups, g3 := m.engine.Violations(lhs, rhs, max)
	out := make([]ViolationGroup, len(groups))
	for i, g := range groups {
		out[i] = ViolationGroup{IDs: g.IDs, RhsValues: g.RhsValues}
	}
	return out, g3, nil
}

// FormatFD renders an FD with the monitor's column names,
// e.g. "[zip] -> city".
func (m *Monitor) FormatFD(f FD) string {
	internal := fromPublic(f)
	return internal.Names(m.columns)
}

// Stats summarizes the work performed so far.
type Stats struct {
	Batches              int
	Validations          int
	SkippedValidations   int
	Comparisons          int
	ViolationSearchRuns  int
	DepthFirstSearchRuns int
	ParallelLevels       int

	// DeltaPruned counts insert-phase candidate validations skipped
	// because no inserted record could agree on the candidate's LHS;
	// WitnessRepairs counts delete-phase validations avoided by rewriting
	// a violation witness onto updated record versions (both require
	// Pruning.Delta).
	DeltaPruned    int
	WitnessRepairs int

	// Scheduler telemetry (Workers >= 1): validation chunks executed by a
	// worker other than the submitter, speculative validations issued
	// ahead of the merge, and how many of those were consumed.
	ChunksStolen           int
	SpeculativeValidations int
	SpeculativeHits        int

	FDsAdded   int
	FDsRemoved int

	// Cumulative wall-clock breakdown of batch processing, following the
	// paper's Figure 1: structural updates, delete phase, insert phase.
	StructureTime   time.Duration
	DeletePhaseTime time.Duration
	InsertPhaseTime time.Duration
}

// Stats returns the accumulated maintenance counters.
func (m *Monitor) Stats() Stats {
	s := m.engine.Stats()
	return Stats{
		Batches:              s.Batches,
		Validations:          s.Validations,
		SkippedValidations:   s.SkippedValidations,
		Comparisons:          s.Comparisons,
		ViolationSearchRuns:  s.ViolationSearchRuns,
		DepthFirstSearchRuns: s.DepthFirstSearchRuns,
		ParallelLevels:       s.ParallelLevels,

		DeltaPruned:            s.DeltaPruned,
		WitnessRepairs:         s.WitnessRepairs,
		ChunksStolen:           s.ChunksStolen,
		SpeculativeValidations: s.SpeculativeValidations,
		SpeculativeHits:        s.SpeculativeHits,

		FDsAdded:        s.FDsAdded,
		FDsRemoved:      s.FDsRemoved,
		StructureTime:   s.StructureTime,
		DeletePhaseTime: s.DeletePhaseTime,
		InsertPhaseTime: s.InsertPhaseTime,
	}
}

func toPublic(in []fd.FD) []FD {
	if len(in) == 0 {
		return nil
	}
	out := make([]FD, len(in))
	for i, f := range in {
		out[i] = FD{Lhs: f.Lhs.Slice(), Rhs: f.Rhs}
	}
	return out
}

func fromPublic(f FD) fd.FD {
	out := fd.FD{Rhs: f.Rhs}
	for _, a := range f.Lhs {
		out.Lhs = out.Lhs.With(a)
	}
	return out
}
